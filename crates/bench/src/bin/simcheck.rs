//! Differential simulation check over the Table-1 benchmarks.
//!
//! For every benchmark and every point of the optimization cube
//! (broadcast-aware × sync-pruning × skid-buffer), runs the untimed
//! golden evaluator against the cycle-accurate simulator of the
//! scheduled design and verifies trace equality plus latency consistency
//! (`hlsb::sim::check_latency`). This is the fast semantics gate: it
//! exercises the whole front-end + scheduler without placement, so all
//! 72 variant runs finish in seconds.

use hlsb::sim::Stimulus;
use hlsb::{Flow, FlowSession, OptimizationOptions};
use hlsb_benchmarks::all_benchmarks;

/// Iterations simulated per loop (trip counts are capped to this).
const ITERS_CAP: u64 = 48;

fn combos() -> Vec<(String, OptimizationOptions)> {
    let mut out = Vec::new();
    for bits in 0u8..8 {
        let opts = OptimizationOptions {
            broadcast_aware: bits & 1 != 0,
            sync_pruning: bits & 2 != 0,
            skid_buffer: bits & 4 != 0,
            min_area_skid: false,
        };
        let name = format!(
            "{}{}{}",
            if opts.broadcast_aware { "B" } else { "-" },
            if opts.sync_pruning { "S" } else { "-" },
            if opts.skid_buffer { "K" } else { "-" },
        );
        out.push((name, opts));
    }
    out
}

fn main() {
    let session = FlowSession::new();
    println!("simcheck: golden vs cycle-accurate over the optimization cube");
    println!(
        "{:<28} {:>5} {:>8} {:>8} {:>8} {:>7}  verdict",
        "benchmark / combo", "vals", "cycles", "stalls", "gated", "match"
    );
    println!("{:-<80}", "");
    let mut failures = 0usize;
    for bench in all_benchmarks() {
        let stim = Stimulus::seeded(&bench.design, 1, ITERS_CAP as usize);
        for (name, opts) in combos() {
            let flow = Flow::new(bench.design.clone())
                .device(bench.device.clone())
                .clock_mhz(bench.clock_mhz)
                .options(opts);
            let sim = session
                .simulate(&flow, &stim, ITERS_CAP)
                .expect("benchmark designs are valid");
            let verdict = sim.check();
            let stalls: u64 = sim.timed.per_loop.iter().map(|r| r.stall_cycles).sum();
            let gated: u64 = sim.timed.per_loop.iter().map(|r| r.gated_cycles).sum();
            println!(
                "{:<28} {:>5} {:>8} {:>8} {:>8} {:>7}  {}",
                format!("{} [{}]", bench.name, name),
                sim.golden.len(),
                sim.timed.cycles,
                stalls,
                gated,
                if sim.timed.trace.diff(&sim.golden).is_none() {
                    "yes"
                } else {
                    "NO"
                },
                match &verdict {
                    Ok(()) => "ok".to_string(),
                    Err(e) => format!("FAIL: {e}"),
                }
            );
            if verdict.is_err() {
                failures += 1;
            }
        }
    }
    println!("{:-<80}", "");
    let stats = session.cache_stats();
    println!(
        "cache: {} hits / {} misses (variants share front-end + baseline schedules)",
        stats.hits, stats.misses
    );
    if failures > 0 {
        eprintln!("simcheck: {failures} variant(s) FAILED");
        std::process::exit(1);
    }
    println!("simcheck: all variants semantics-preserving");
}
