//! `dse` — Pareto design-space exploration over the broadcast-optimization
//! knobs of the flow (see the `hlsb-dse` crate).
//!
//! ```text
//! dse [--design <name>|all] [--strategy grid|random|halving]
//!     [--clocks <mhz>[,<mhz>...]] [--budget <n>] [--seed <n>]
//!     [--seeds <n>[,<n>...]] [--efforts fast|normal|both]
//!     [--partitions <n>|auto|off[,...]] [--store <path>]
//!     [--format table|jsonl] [--verify-iters <n>]
//!     [--trace-out <path>] [--ledger <path>] [--metrics-out <path>]
//!     [--list]
//! ```
//!
//! For every selected benchmark the explorer searches the paper's 4-bit
//! optimization cube (optionally widened with placement seeds/efforts)
//! over the given clock targets, reports the Pareto frontier over
//! (fmax, latency cycles, register+LUT area), and differentially
//! simulates every frontier configuration against the untimed golden
//! evaluator. `--budget` caps *full-flow* (place-and-route) evaluations;
//! with `halving`, cheap front-end/schedule/lint probes rank the whole
//! space first and only the survivors are placed. `--store` persists
//! results as JSONL keyed by the flow's config key — re-running with the
//! same store resumes an interrupted sweep without re-placing anything.
//! `--trace-out` enables span tracing on every fresh full evaluation and
//! writes the collected trees as Chrome trace-event JSON (one process
//! per evaluated configuration; load in Perfetto). `--ledger` appends one
//! run-ledger record per flow evaluation plus one `dse` campaign record
//! per benchmark; `--metrics-out` writes the merged per-evaluation
//! metrics in the Prometheus text format.
//!
//! Exit status is 2 on usage errors, 1 if any frontier configuration
//! fails its differential-simulation check, 0 otherwise.

use hlsb::{FlowSession, Partitioning, PlaceEffort};
use hlsb_bench::parse_partitions;
use hlsb_benchmarks::{all_benchmarks, Benchmark};
use hlsb_dse::{report, Explorer, KnobSpace, ResultStore, Strategy, DEFAULT_VERIFY_ITERS};
use hlsb_telemetry::{render_prometheus, RunLedger, RunRecord};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

struct Args {
    design: String,
    strategy: Strategy,
    clocks_mhz: Option<Vec<f64>>,
    budget: usize,
    seed: u64,
    place_seeds: Vec<u32>,
    efforts: Vec<PlaceEffort>,
    partitions: Vec<Partitioning>,
    store: Option<String>,
    artifacts: Option<String>,
    format: Format,
    verify_iters: u64,
    trace_out: Option<String>,
    ledger: Option<String>,
    metrics_out: Option<String>,
    list: bool,
}

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Table,
    Jsonl,
}

fn usage() {
    eprintln!(
        "usage: dse [--design <name>|all] [--strategy grid|random|halving]\n\
         \x20          [--clocks <mhz>[,<mhz>...]] [--budget <n>] [--seed <n>]\n\
         \x20          [--seeds <n>[,<n>...]] [--efforts fast|normal|both]\n\
         \x20          [--partitions <n>|auto|off[,...]] [--store <path>]\n\
         \x20          [--artifacts <dir>]\n\
         \x20          [--format table|jsonl]\n\
         \x20          [--verify-iters <n>] [--trace-out <path>]\n\
         \x20          [--ledger <path>] [--metrics-out <path>] [--list]"
    );
}

fn parse_list<T: std::str::FromStr>(s: &str, what: &str) -> Result<Vec<T>, String> {
    s.split(',')
        .map(|tok| {
            tok.trim()
                .parse()
                .map_err(|_| format!("bad {what} `{tok}`"))
        })
        .collect()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        design: "all".into(),
        strategy: Strategy::Grid,
        clocks_mhz: None,
        budget: usize::MAX,
        seed: hlsb_bench::SEED,
        place_seeds: vec![1],
        efforts: vec![PlaceEffort::Fast],
        partitions: vec![Partitioning::Off],
        store: None,
        artifacts: None,
        format: Format::Table,
        verify_iters: DEFAULT_VERIFY_ITERS,
        trace_out: None,
        ledger: None,
        metrics_out: None,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--design" => args.design = it.next().ok_or("--design needs a value")?,
            "--strategy" => {
                let s = it.next().ok_or("--strategy needs a value")?;
                args.strategy = Strategy::from_name(&s).ok_or(format!("unknown strategy `{s}`"))?;
            }
            "--clocks" => {
                let c = it.next().ok_or("--clocks needs a value")?;
                let clocks: Vec<f64> = parse_list(&c, "clock")?;
                if clocks.iter().any(|m| !(m.is_finite() && *m > 0.0)) {
                    return Err(format!("bad clocks `{c}`"));
                }
                args.clocks_mhz = Some(clocks);
            }
            "--budget" => {
                let b = it.next().ok_or("--budget needs a value")?;
                args.budget = b.parse().map_err(|_| format!("bad budget `{b}`"))?;
                if args.budget == 0 {
                    return Err("budget must be at least 1".into());
                }
            }
            "--seed" => {
                let s = it.next().ok_or("--seed needs a value")?;
                args.seed = s.parse().map_err(|_| format!("bad seed `{s}`"))?;
            }
            "--seeds" => {
                let s = it.next().ok_or("--seeds needs a value")?;
                args.place_seeds = parse_list(&s, "seed count")?;
                if args.place_seeds.is_empty() || args.place_seeds.contains(&0) {
                    return Err(format!("bad seed counts `{s}`"));
                }
            }
            "--efforts" => {
                args.efforts = match it.next().ok_or("--efforts needs a value")?.as_str() {
                    "fast" => vec![PlaceEffort::Fast],
                    "normal" => vec![PlaceEffort::Normal],
                    "both" => vec![PlaceEffort::Fast, PlaceEffort::Normal],
                    e => return Err(format!("unknown efforts `{e}`")),
                };
            }
            "--partitions" => {
                let p = it.next().ok_or("--partitions needs <n>|auto|off[,...]")?;
                args.partitions = p
                    .split(',')
                    .map(|tok| {
                        parse_partitions(tok.trim())
                            .ok_or(format!("bad partitions value `{tok}` (want <n>|auto|off)"))
                    })
                    .collect::<Result<_, _>>()?;
                if args.partitions.is_empty() {
                    return Err(format!("bad partitions `{p}`"));
                }
            }
            "--store" => args.store = Some(it.next().ok_or("--store needs a value")?),
            "--artifacts" => args.artifacts = Some(it.next().ok_or("--artifacts needs a value")?),
            "--format" => {
                args.format = match it.next().ok_or("--format needs a value")?.as_str() {
                    "table" => Format::Table,
                    "jsonl" => Format::Jsonl,
                    f => return Err(format!("unknown format `{f}`")),
                };
            }
            "--verify-iters" => {
                let v = it.next().ok_or("--verify-iters needs a value")?;
                args.verify_iters = v.parse().map_err(|_| format!("bad verify-iters `{v}`"))?;
            }
            "--trace-out" => args.trace_out = Some(it.next().ok_or("--trace-out needs a path")?),
            "--ledger" => args.ledger = Some(it.next().ok_or("--ledger needs a path")?),
            "--metrics-out" => {
                args.metrics_out = Some(it.next().ok_or("--metrics-out needs a path")?);
            }
            "--list" => args.list = true,
            "--help" | "-h" => return Err(String::new()),
            f => return Err(format!("unknown flag `{f}`")),
        }
    }
    Ok(args)
}

fn explore(
    bench: &Benchmark,
    args: &Args,
    session: &FlowSession,
    ledger: Option<&RunLedger>,
) -> std::io::Result<(bool, Vec<(String, hlsb::TraceTree)>)> {
    let clocks = args
        .clocks_mhz
        .clone()
        .unwrap_or_else(|| vec![bench.clock_mhz]);
    let space = KnobSpace {
        place_seeds: args.place_seeds.clone(),
        efforts: args.efforts.clone(),
        partitions: args.partitions.clone(),
        ..KnobSpace::optimization_cube(clocks)
    };
    let store = match &args.store {
        // One store file can serve several benchmarks: the config key
        // covers the design, so entries never collide.
        Some(path) => ResultStore::open(path)?,
        None => ResultStore::in_memory(),
    };
    let campaign_start = Instant::now();
    let mut report = Explorer::new(&bench.design, &bench.device)
        .space(space)
        .strategy(args.strategy)
        .budget(args.budget)
        .seed(args.seed)
        .store(store)
        .verify_iters(args.verify_iters)
        .trace(args.trace_out.is_some() || args.metrics_out.is_some())
        .run(session)?;

    if let Some(ledger) = ledger {
        let status = if report.frontier_semantics_ok() {
            "ok"
        } else {
            "failed"
        };
        let wall_ms = campaign_start.elapsed().as_secs_f64() * 1e3;
        let mut rec = RunRecord::new("dse", &bench.design.name, 0, status, wall_ms);
        for pass in &report.trace.records {
            rec.add_stage(&pass.pass, pass.wall_ms);
        }
        rec.add_count("full-evals", report.full_evals as u64);
        rec.add_count("probe-evals", report.probe_evals as u64);
        rec.add_count("store-hits", report.store_hits as u64);
        rec.add_count("infeasible", report.infeasible as u64);
        rec.add_count("budget-dropped", report.budget_dropped as u64);
        rec.add_count("points", report.points.len() as u64);
        rec.add_count("frontier", report.frontier.len() as u64);
        ledger.append(rec)?;
    }

    match args.format {
        Format::Table => {
            println!("== {} ({}) ==", bench.name, bench.device.name);
            print!("{}", report::frontier_table(&report));
            println!("{}", report::summary_line(&report));
            println!();
        }
        Format::Jsonl => print!("{}", report::frontier_jsonl(&report, &bench.design.name)),
    }
    let trees = std::mem::take(&mut report.span_trees)
        .into_iter()
        .map(|(label, tree)| (format!("{} {label}", bench.design.name), tree))
        .collect();
    Ok((report.frontier_semantics_ok(), trees))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("dse: {e}");
            }
            usage();
            return ExitCode::from(2);
        }
    };

    let benches = all_benchmarks();
    if args.list {
        for b in &benches {
            println!(
                "{:<16} {:>6.0} MHz  {}",
                b.design.name, b.clock_mhz, b.device.name
            );
        }
        return ExitCode::SUCCESS;
    }

    let selected: Vec<&Benchmark> = if args.design == "all" {
        benches.iter().collect()
    } else {
        benches
            .iter()
            .filter(|b| b.design.name == args.design)
            .collect()
    };
    if selected.is_empty() {
        eprintln!(
            "dse: no benchmark named `{}` (try --list; one of: {})",
            args.design,
            benches
                .iter()
                .map(|b| b.design.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::from(2);
    }

    let mut session = match &args.artifacts {
        // The persistent artifact store classifies cross-process warm
        // rebuilds: summary_line's `d` counts come from here.
        Some(dir) => match hlsb_store::ArtifactStore::open(dir) {
            Ok(store) => FlowSession::new().with_backend(Arc::new(store)),
            Err(e) => {
                eprintln!("dse: cannot open artifact store {dir}: {e}");
                return ExitCode::from(2);
            }
        },
        None => FlowSession::new(),
    };
    let ledger = match &args.ledger {
        Some(path) => match RunLedger::open(path) {
            Ok(ledger) => {
                let ledger = Arc::new(ledger);
                session = session.with_ledger(ledger.clone());
                Some(ledger)
            }
            Err(e) => {
                eprintln!("dse: cannot open ledger {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let mut semantics_ok = true;
    let mut traces: Vec<(String, hlsb::TraceTree)> = Vec::new();
    for bench in selected {
        match explore(bench, &args, &session, ledger.as_deref()) {
            Ok((ok, trees)) => {
                semantics_ok &= ok;
                traces.extend(trees);
            }
            Err(e) => {
                eprintln!("dse: store I/O failed for {}: {e}", bench.name);
                return ExitCode::from(2);
            }
        }
    }
    if let Some(path) = &args.metrics_out {
        let mut metrics = hlsb::MetricsRegistry::default();
        for (_, tree) in &traces {
            metrics.merge(&tree.metrics);
        }
        if let Err(e) = std::fs::write(path, render_prometheus(&metrics, &[("tool", "dse")])) {
            eprintln!("dse: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.trace_out {
        let runs: Vec<(&str, &hlsb::TraceTree)> = traces
            .iter()
            .map(|(label, t)| (label.as_str(), t))
            .collect();
        if let Err(e) = std::fs::write(path, hlsb::chrome_trace(&runs)) {
            eprintln!("dse: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote Chrome trace for {} evaluations to {path}",
            runs.len()
        );
    }
    if !semantics_ok {
        eprintln!("dse: a frontier configuration FAILED its differential simulation");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
