//! Regenerates Fig. 15b: achieved frequency of the genome design using the
//! HLS original schedule vs our broadcast-aware schedule, across unroll
//! factors.

use hlsb::{Flow, OptimizationOptions};
use hlsb_bench::SEED;
use hlsb_benchmarks::genome;

fn main() {
    let device = hlsb::fabric::Device::ultrascale_plus_vu9p();
    println!("Fig. 15b: genome Fmax vs unroll factor");
    println!(
        "{:>8} {:>16} {:>16} {:>7}",
        "unroll", "HLS sched (MHz)", "our sched (MHz)", "gain"
    );

    for unroll in [8u32, 16, 32, 48, 64] {
        let design = genome::design(unroll);
        let run = |opts| {
            Flow::new(design.clone())
                .device(device.clone())
                .clock_mhz(333.0)
                .options(opts)
                .seed(SEED)
                .run()
                .expect("flow")
        };
        let orig = run(OptimizationOptions::none());
        let ours = run(OptimizationOptions::data_only());
        println!(
            "{unroll:>8} {:>16.0} {:>16.0} {:>+6.0}%",
            orig.fmax_mhz,
            ours.fmax_mhz,
            ours.gain_over(&orig)
        );
    }
    println!("\nexpected shape: the gap widens as the broadcast factor grows");
    println!("(paper anchor: 264 -> 341 MHz at unroll 64)");
}
