//! Regenerates Fig. 15b: achieved frequency of the genome design using the
//! HLS original schedule vs our broadcast-aware schedule, across unroll
//! factors. All ten flows run through one [`hlsb::FlowSession`] (parallel
//! up to the thread budget; each unroll factor's two variants share a
//! cached front-end).

use hlsb::{Flow, FlowSession, OptimizationOptions};
use hlsb_bench::{expect_all, pass_summary, SEED};
use hlsb_benchmarks::genome;

const UNROLLS: [u32; 5] = [8, 16, 32, 48, 64];

fn main() {
    let device = hlsb::fabric::Device::ultrascale_plus_vu9p();
    println!("Fig. 15b: genome Fmax vs unroll factor");
    println!(
        "{:>8} {:>16} {:>16} {:>7}",
        "unroll", "HLS sched (MHz)", "our sched (MHz)", "gain"
    );

    let mut flows = Vec::new();
    let mut labels = Vec::new();
    for unroll in UNROLLS {
        let design = genome::design(unroll);
        for (tag, opts) in [
            ("orig", OptimizationOptions::none()),
            ("data", OptimizationOptions::data_only()),
        ] {
            flows.push(
                Flow::new(design.clone())
                    .device(device.clone())
                    .clock_mhz(333.0)
                    .options(opts)
                    .seed(SEED),
            );
            labels.push(format!("genome u{unroll} ({tag})"));
        }
    }
    let session = FlowSession::new();
    let results = expect_all(&labels, session.run_many(&flows));

    for (unroll, pair) in UNROLLS.iter().zip(results.chunks(2)) {
        let (orig, ours) = (&pair[0], &pair[1]);
        println!(
            "{unroll:>8} {:>16.0} {:>16.0} {:>+6.0}%",
            orig.fmax_mhz,
            ours.fmax_mhz,
            ours.gain_over(orig)
        );
    }
    println!("\nexpected shape: the gap widens as the broadcast factor grows");
    println!("(paper anchor: 264 -> 341 MHz at unroll 64)");
    println!();
    println!("{}", pass_summary(&results, &session));
}
