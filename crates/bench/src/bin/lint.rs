//! `lint` — run the static implicit-broadcast analyzer on the paper's
//! benchmarks (or any subset) without placing or timing anything.
//!
//! ```text
//! lint [--design <name>|all] [--target vu9p|zc706|u50|virtex7]
//!      [--clock <mhz>] [--format table|jsonl|sarif] [--list]
//! ```
//!
//! By default every benchmark is linted against its paper-mandated
//! device and clock. `--target`/`--clock` override both for
//! what-if runs (e.g. "would genome's broadcasts matter on a ZC706?").
//! Exit status is 2 on usage errors, 1 if any finding is error-severity,
//! 0 otherwise — so CI can gate on it like any other linter.

use hlsb_benchmarks::{all_benchmarks, Benchmark};
use hlsb_fabric::Device;
use hlsb_lint::{lint_with, render_sarif, LintConfig, LintReport, Severity};
use std::process::ExitCode;

struct Args {
    design: String,
    target: Option<Device>,
    clock_mhz: Option<f64>,
    format: Format,
    list: bool,
}

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Table,
    Jsonl,
    Sarif,
}

fn device_by_name(s: &str) -> Option<Device> {
    match s {
        "vu9p" => Some(Device::ultrascale_plus_vu9p()),
        "zc706" => Some(Device::zynq_zc706()),
        "u50" => Some(Device::alveo_u50()),
        "virtex7" => Some(Device::virtex7()),
        _ => None,
    }
}

fn usage() {
    eprintln!(
        "usage: lint [--design <name>|all] [--target vu9p|zc706|u50|virtex7]\n\
         \x20           [--clock <mhz>] [--format table|jsonl|sarif] [--list]"
    );
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        design: "all".into(),
        target: None,
        clock_mhz: None,
        format: Format::Table,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--design" => {
                args.design = it.next().ok_or("--design needs a value")?;
            }
            "--target" => {
                let t = it.next().ok_or("--target needs a value")?;
                args.target = Some(device_by_name(&t).ok_or(format!("unknown target `{t}`"))?);
            }
            "--clock" => {
                let c = it.next().ok_or("--clock needs a value")?;
                let mhz: f64 = c.parse().map_err(|_| format!("bad clock `{c}`"))?;
                if !(mhz.is_finite() && mhz > 0.0) {
                    return Err(format!("bad clock `{c}`"));
                }
                args.clock_mhz = Some(mhz);
            }
            "--format" => {
                args.format = match it.next().ok_or("--format needs a value")?.as_str() {
                    "table" => Format::Table,
                    "jsonl" => Format::Jsonl,
                    "sarif" => Format::Sarif,
                    f => return Err(format!("unknown format `{f}`")),
                };
            }
            "--list" => args.list = true,
            "--help" | "-h" => return Err(String::new()),
            f => return Err(format!("unknown flag `{f}`")),
        }
    }
    Ok(args)
}

fn lint_benchmark(bench: &Benchmark, args: &Args) -> LintReport {
    let device = args.target.clone().unwrap_or_else(|| bench.device.clone());
    let config = LintConfig {
        clock_mhz: args.clock_mhz.unwrap_or(bench.clock_mhz),
        ..LintConfig::default()
    };
    lint_with(&bench.design, &device, config)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("lint: {e}");
            }
            usage();
            return ExitCode::from(2);
        }
    };

    let benches = all_benchmarks();
    if args.list {
        for b in &benches {
            println!(
                "{:<16} {:<22} {}",
                b.design.name, b.broadcast_type, b.device.name
            );
        }
        return ExitCode::SUCCESS;
    }

    let selected: Vec<Benchmark> = if args.design == "all" {
        benches
    } else {
        match hlsb_bench::find_benchmark(&args.design) {
            Some(b) => vec![b],
            None => {
                eprintln!(
                    "lint: no benchmark matching `{}` (try --list; one of: {})",
                    args.design,
                    benches
                        .iter()
                        .map(|b| b.design.name.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return ExitCode::from(2);
            }
        }
    };

    let reports: Vec<LintReport> = selected.iter().map(|b| lint_benchmark(b, &args)).collect();
    match args.format {
        Format::Table => {
            for r in &reports {
                print!("{}", r.to_table());
                println!();
            }
        }
        Format::Jsonl => {
            for r in &reports {
                print!("{}", r.to_jsonl());
            }
        }
        Format::Sarif => println!("{}", render_sarif(&reports)),
    }

    let worst = reports.iter().filter_map(LintReport::max_severity).max();
    if worst == Some(Severity::Error) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
