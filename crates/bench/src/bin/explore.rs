//! `explore` — closed-loop maximum-frequency search (see the
//! `hlsb-explore` crate).
//!
//! ```text
//! explore [--design <name>|all] [--configs <spec>[,<spec>...]]
//!         [--tolerance <mhz>] [--budget <n>] [--start <mhz>]
//!         [--seed <n>] [--verify-iters <n>] [--log <path>]
//!         [--format table|jsonl] [--trace-out <path>]
//!         [--ledger <path>] [--metrics-out <path>] [--list]
//! ```
//!
//! For every selected benchmark the explorer searches the HLS clock
//! target per configuration until it converges — within `--tolerance` —
//! to the highest target the implementation still signs off at. A
//! configuration spec is a preset (`none`, `all`), a 4-character toggle
//! mask (`BS-M`), optionally with a `+rB.B` register-injection suffix
//! (`all+r1.2`); the default set is `none,all,all+r1`. `--budget` caps
//! fresh full (place-and-route) evaluations per design; probes and
//! frequency-log hits are free. `--log` persists every trial as JSONL
//! keyed by the flow's config key — re-running with the same log resumes
//! an interrupted search and reproduces the same table without
//! re-running completed trials. `--trace-out` writes the explorer's
//! `explore.*` span tree as JSONL (one tree per benchmark,
//! length-prefixed by a `# design` comment line). `--ledger` appends one
//! run-ledger record per flow evaluation plus one `explore` campaign
//! record per benchmark; `--metrics-out` writes the merged search
//! metrics in the Prometheus text format.
//!
//! Exit status is 2 on usage errors, 1 if any converged configuration
//! fails its differential-simulation or contract check, 0 otherwise.

use hlsb::FlowSession;
use hlsb_benchmarks::{all_benchmarks, Benchmark};
use hlsb_explore::{report, ExploreConfig, FmaxExplorer, FreqLog};
use hlsb_telemetry::{render_prometheus, RunLedger, RunRecord};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

struct Args {
    design: String,
    configs: Vec<ExploreConfig>,
    tolerance_mhz: f64,
    budget: usize,
    start_mhz: Option<f64>,
    seed: u64,
    verify_iters: u64,
    log: Option<String>,
    format: Format,
    trace_out: Option<String>,
    ledger: Option<String>,
    metrics_out: Option<String>,
    list: bool,
}

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Table,
    Jsonl,
}

fn usage() {
    eprintln!(
        "usage: explore [--design <name>|all] [--configs <spec>[,<spec>...]]\n\
         \x20              [--tolerance <mhz>] [--budget <n>] [--start <mhz>]\n\
         \x20              [--seed <n>] [--verify-iters <n>] [--log <path>]\n\
         \x20              [--format table|jsonl] [--trace-out <path>]\n\
         \x20              [--ledger <path>] [--metrics-out <path>] [--list]\n\
         \x20  config specs: none | all | 4-char mask (e.g. BS-M), each with an\n\
         \x20  optional +rB.B injection suffix (e.g. all+r1.2)"
    );
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        design: "all".into(),
        configs: ExploreConfig::default_set(),
        tolerance_mhz: hlsb_explore::DEFAULT_TOLERANCE_MHZ,
        budget: hlsb_explore::DEFAULT_BUDGET,
        start_mhz: None,
        seed: hlsb_bench::SEED,
        verify_iters: hlsb_explore::DEFAULT_VERIFY_ITERS,
        log: None,
        format: Format::Table,
        trace_out: None,
        ledger: None,
        metrics_out: None,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--design" => args.design = it.next().ok_or("--design needs a value")?,
            "--configs" => {
                let c = it.next().ok_or("--configs needs a value")?;
                args.configs = c
                    .split(',')
                    .map(|tok| {
                        ExploreConfig::parse(tok.trim()).ok_or(format!("bad config spec `{tok}`"))
                    })
                    .collect::<Result<_, _>>()?;
                if args.configs.is_empty() {
                    return Err(format!("bad configs `{c}`"));
                }
            }
            "--tolerance" => {
                let t = it.next().ok_or("--tolerance needs a value")?;
                args.tolerance_mhz = t.parse().map_err(|_| format!("bad tolerance `{t}`"))?;
                if !(args.tolerance_mhz.is_finite() && args.tolerance_mhz > 0.0) {
                    return Err(format!("bad tolerance `{t}`"));
                }
            }
            "--budget" => {
                let b = it.next().ok_or("--budget needs a value")?;
                args.budget = b.parse().map_err(|_| format!("bad budget `{b}`"))?;
                if args.budget == 0 {
                    return Err("budget must be at least 1".into());
                }
            }
            "--start" => {
                let s = it.next().ok_or("--start needs a value")?;
                let mhz: f64 = s.parse().map_err(|_| format!("bad start `{s}`"))?;
                if !(mhz.is_finite() && mhz > 0.0) {
                    return Err(format!("bad start `{s}`"));
                }
                args.start_mhz = Some(mhz);
            }
            "--seed" => {
                let s = it.next().ok_or("--seed needs a value")?;
                args.seed = s.parse().map_err(|_| format!("bad seed `{s}`"))?;
            }
            "--verify-iters" => {
                let v = it.next().ok_or("--verify-iters needs a value")?;
                args.verify_iters = v.parse().map_err(|_| format!("bad verify-iters `{v}`"))?;
            }
            "--log" => args.log = Some(it.next().ok_or("--log needs a value")?),
            "--format" => {
                args.format = match it.next().ok_or("--format needs a value")?.as_str() {
                    "table" => Format::Table,
                    "jsonl" => Format::Jsonl,
                    f => return Err(format!("unknown format `{f}`")),
                };
            }
            "--trace-out" => args.trace_out = Some(it.next().ok_or("--trace-out needs a path")?),
            "--ledger" => args.ledger = Some(it.next().ok_or("--ledger needs a path")?),
            "--metrics-out" => {
                args.metrics_out = Some(it.next().ok_or("--metrics-out needs a path")?);
            }
            "--list" => args.list = true,
            "--help" | "-h" => return Err(String::new()),
            f => return Err(format!("unknown flag `{f}`")),
        }
    }
    Ok(args)
}

fn explore(
    bench: &Benchmark,
    args: &Args,
    session: &FlowSession,
    ledger: Option<&RunLedger>,
) -> std::io::Result<(bool, Option<hlsb::TraceTree>)> {
    let log = match &args.log {
        // One log file can serve several benchmarks: the trial key
        // covers the design, so entries never collide.
        Some(path) => FreqLog::open(path)?,
        None => FreqLog::in_memory(),
    };
    let campaign_start = Instant::now();
    let report = FmaxExplorer::new(&bench.design, &bench.device)
        .configs(args.configs.clone())
        .start_mhz(args.start_mhz.unwrap_or(bench.clock_mhz))
        .tolerance_mhz(args.tolerance_mhz)
        .budget(args.budget)
        .seed(args.seed)
        .log(log)
        .verify_iters(args.verify_iters)
        .trace(args.trace_out.is_some() || args.metrics_out.is_some())
        .run(session)?;

    if let Some(ledger) = ledger {
        let status = if report.semantics_ok() {
            "ok"
        } else {
            "failed"
        };
        let wall_ms = campaign_start.elapsed().as_secs_f64() * 1e3;
        let mut rec = RunRecord::new("explore", &bench.design.name, 0, status, wall_ms);
        for pass in &report.trace.records {
            rec.add_stage(&pass.pass, pass.wall_ms);
        }
        rec.add_count("full-evals", report.full_evals as u64);
        rec.add_count("probe-evals", report.probe_evals as u64);
        rec.add_count("log-hits", report.log_hits as u64);
        rec.add_count("configs", report.outcomes.len() as u64);
        let converged = report
            .outcomes
            .iter()
            .filter(|o| o.converged_mhz.is_some())
            .count();
        rec.add_count("converged", converged as u64);
        ledger.append(rec)?;
    }

    match args.format {
        Format::Table => {
            println!("== {} ({}) ==", bench.name, bench.device.name);
            print!("{}", report::best_frequencies_table(&report));
            println!("{}", report::summary_line(&report));
            println!();
        }
        Format::Jsonl => print!("{}", report::report_jsonl(&report)),
    }
    Ok((report.semantics_ok(), report.span_tree))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("explore: {e}");
            }
            usage();
            return ExitCode::from(2);
        }
    };

    let benches = all_benchmarks();
    if args.list {
        for b in &benches {
            println!(
                "{:<16} {:>6.0} MHz  {}",
                b.design.name, b.clock_mhz, b.device.name
            );
        }
        return ExitCode::SUCCESS;
    }

    let selected: Vec<&Benchmark> = if args.design == "all" {
        benches.iter().collect()
    } else {
        benches
            .iter()
            .filter(|b| b.design.name == args.design)
            .collect()
    };
    if selected.is_empty() {
        eprintln!(
            "explore: no benchmark named `{}` (try --list; one of: {})",
            args.design,
            benches
                .iter()
                .map(|b| b.design.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::from(2);
    }

    let mut session = FlowSession::new();
    let ledger = match &args.ledger {
        Some(path) => match RunLedger::open(path) {
            Ok(ledger) => {
                let ledger = Arc::new(ledger);
                session = session.with_ledger(ledger.clone());
                Some(ledger)
            }
            Err(e) => {
                eprintln!("explore: cannot open ledger {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let mut semantics_ok = true;
    let mut traces: Vec<(String, hlsb::TraceTree)> = Vec::new();
    for bench in selected {
        match explore(bench, &args, &session, ledger.as_deref()) {
            Ok((ok, tree)) => {
                semantics_ok &= ok;
                if let Some(tree) = tree {
                    traces.push((bench.design.name.clone(), tree));
                }
            }
            Err(e) => {
                eprintln!("explore: log I/O failed for {}: {e}", bench.name);
                return ExitCode::from(2);
            }
        }
    }
    if let Some(path) = &args.trace_out {
        let mut out = String::new();
        for (design, tree) in &traces {
            out.push_str(&format!("# {design}\n"));
            out.push_str(&tree.to_jsonl());
        }
        if let Err(e) = std::fs::write(path, out) {
            eprintln!("explore: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote explore span trees for {} benchmarks to {path}",
            traces.len()
        );
    }
    if let Some(path) = &args.metrics_out {
        let mut metrics = hlsb::MetricsRegistry::default();
        for (_, tree) in &traces {
            metrics.merge(&tree.metrics);
        }
        if let Err(e) = std::fs::write(path, render_prometheus(&metrics, &[("tool", "explore")])) {
            eprintln!("explore: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if !semantics_ok {
        eprintln!("explore: a converged configuration FAILED its semantics check");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
