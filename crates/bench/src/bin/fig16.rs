//! Regenerates Fig. 16: achieved frequency of the Jacobi super-pipeline
//! versus the number of concatenated iterations, under stall-based and
//! skid-buffer-based control.

use hlsb::{Flow, OptimizationOptions};
use hlsb_bench::SEED;
use hlsb_benchmarks::stencil;

fn main() {
    let device = hlsb::fabric::Device::ultrascale_plus_vu9p();
    println!("Fig. 16: Jacobi pipeline Fmax vs concatenated iterations");
    println!(
        "{:>11} {:>8} {:>12} {:>11}",
        "iterations", "stages", "stall (MHz)", "skid (MHz)"
    );

    for iterations in 1..=8usize {
        let design = stencil::design(iterations);
        let run = |opts| {
            Flow::new(design.clone())
                .device(device.clone())
                .clock_mhz(333.0)
                .options(opts)
                .seed(SEED)
                .run()
                .expect("flow")
        };
        let stall = run(OptimizationOptions::none());
        let skid = run(OptimizationOptions::skid_plain());
        println!(
            "{iterations:>11} {:>8} {:>12.0} {:>11.0}",
            stall.schedule_depths.first().copied().unwrap_or(0),
            stall.fmax_mhz,
            skid.fmax_mhz
        );
    }
    println!(
        "\nexpected shape: stall control decays as the pipeline lengthens;\n\
         skid-buffer control stays roughly flat (paper: 120 vs 253 MHz at 8)."
    );
}
