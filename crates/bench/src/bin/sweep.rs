//! Clock-target sweep: how the HLS clock target interacts with the
//! achieved frequency (the schedule gets deeper as the target rises, but
//! the physical fabric has the last word).
//!
//! ```text
//! sweep <benchmark-name-substring> [none|data|skid|all]
//!       [--partitions <n>|auto|off] [--trace-out <path>]
//! ```
//!
//! The targets run through one [`hlsb::FlowSession`]: the front-end
//! artifact is clock-independent, so all seven flows unroll once and the
//! sweep parallelizes across clock targets up to the thread budget.
//! `--trace-out` records a span trace per target and writes the batch as
//! Chrome trace-event JSON (one process per clock target; load in
//! Perfetto or `chrome://tracing`).

use hlsb::{chrome_trace, Flow, FlowSession, OptimizationOptions, Partitioning};
use hlsb_bench::{expect_all, find_benchmark, parse_partitions, pass_summary, SEED};

const TARGETS: [f64; 7] = [150.0, 200.0, 250.0, 300.0, 333.0, 400.0, 500.0];

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut trace_out: Option<String> = None;
    let mut partitions = Partitioning::Off;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace-out" => {
                trace_out = Some(it.next().unwrap_or_else(|| {
                    eprintln!("sweep: --trace-out needs a path");
                    std::process::exit(2);
                }));
            }
            "--partitions" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("sweep: --partitions needs <n>|auto|off");
                    std::process::exit(2);
                });
                partitions = parse_partitions(&v).unwrap_or_else(|| {
                    eprintln!("sweep: bad --partitions value `{v}` (want <n>|auto|off)");
                    std::process::exit(2);
                });
            }
            _ => positional.push(arg),
        }
    }
    let name = positional.first().map(String::as_str).unwrap_or("genome");
    let level = positional.get(1).map(String::as_str).unwrap_or("all");
    let options = match level {
        "all" => OptimizationOptions::all(),
        "data" => OptimizationOptions::data_only(),
        "skid" => OptimizationOptions::skid_plain(),
        _ => OptimizationOptions::none(),
    };
    let bench = find_benchmark(name).unwrap_or_else(|| panic!("no benchmark matching '{name}'"));

    println!("clock-target sweep: {} ({level})", bench.name);
    println!(
        "{:>13} {:>15} {:>7} {:>6}",
        "target (MHz)", "achieved (MHz)", "depth", "regs"
    );
    let flows: Vec<Flow> = TARGETS
        .iter()
        .map(|&target| {
            Flow::new(bench.design.clone())
                .device(bench.device.clone())
                .clock_mhz(target)
                .options(options)
                .seed(SEED)
                .partitions(partitions)
                .trace(trace_out.is_some())
        })
        .collect();
    let labels: Vec<String> = TARGETS
        .iter()
        .map(|t| format!("{} @ {t:.0} MHz", bench.name))
        .collect();
    let session = FlowSession::new();
    let results = expect_all(&labels, session.run_many(&flows));

    for (target, r) in TARGETS.iter().zip(&results) {
        println!(
            "{target:>13.0} {:>15.0} {:>7} {:>6}",
            r.fmax_mhz,
            r.schedule_depths.iter().max().copied().unwrap_or(0),
            r.inserted_regs
        );
    }
    println!();
    println!("{}", pass_summary(&results, &session));

    if let Some(path) = trace_out {
        let runs: Vec<(&str, &hlsb::TraceTree)> = labels
            .iter()
            .zip(&results)
            .filter_map(|(label, r)| r.span_tree.as_ref().map(|t| (label.as_str(), t)))
            .collect();
        std::fs::write(&path, chrome_trace(&runs)).unwrap_or_else(|e| {
            eprintln!("sweep: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote Chrome trace for {} runs to {path}", runs.len());
    }
}
