//! Clock-target sweep: how the HLS clock target interacts with the
//! achieved frequency (the schedule gets deeper as the target rises, but
//! the physical fabric has the last word).
//!
//! ```text
//! sweep <benchmark-name-substring> [none|data|skid|all]
//! ```
//!
//! The targets run through one [`hlsb::FlowSession`]: the front-end
//! artifact is clock-independent, so all seven flows unroll once and the
//! sweep parallelizes across clock targets up to the thread budget.

use hlsb::{Flow, FlowSession, OptimizationOptions};
use hlsb_bench::{expect_all, pass_summary, SEED};
use hlsb_benchmarks::all_benchmarks;

const TARGETS: [f64; 7] = [150.0, 200.0, 250.0, 300.0, 333.0, 400.0, 500.0];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("genome");
    let level = args.get(2).map(String::as_str).unwrap_or("all");
    let options = match level {
        "all" => OptimizationOptions::all(),
        "data" => OptimizationOptions::data_only(),
        "skid" => OptimizationOptions::skid_plain(),
        _ => OptimizationOptions::none(),
    };
    let bench = all_benchmarks()
        .into_iter()
        .find(|b| b.name.to_lowercase().contains(&name.to_lowercase()))
        .unwrap_or_else(|| panic!("no benchmark matching '{name}'"));

    println!("clock-target sweep: {} ({level})", bench.name);
    println!(
        "{:>13} {:>15} {:>7} {:>6}",
        "target (MHz)", "achieved (MHz)", "depth", "regs"
    );
    let flows: Vec<Flow> = TARGETS
        .iter()
        .map(|&target| {
            Flow::new(bench.design.clone())
                .device(bench.device.clone())
                .clock_mhz(target)
                .options(options)
                .seed(SEED)
        })
        .collect();
    let labels: Vec<String> = TARGETS
        .iter()
        .map(|t| format!("{} @ {t:.0} MHz", bench.name))
        .collect();
    let session = FlowSession::new();
    let results = expect_all(&labels, session.run_many(&flows));

    for (target, r) in TARGETS.iter().zip(&results) {
        println!(
            "{target:>13.0} {:>15.0} {:>7} {:>6}",
            r.fmax_mhz,
            r.schedule_depths.iter().max().copied().unwrap_or(0),
            r.inserted_regs
        );
    }
    println!();
    println!("{}", pass_summary(&results, &session));
}
