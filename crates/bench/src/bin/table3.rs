//! Regenerates Table 3: pattern matching under the optimization ladder
//! (Original / Opt. Data / Opt. Data & Ctrl).

use hlsb::OptimizationOptions;
use hlsb_bench::run_benchmark;
use hlsb_benchmarks::pattern_match;

fn main() {
    let bench = pattern_match::benchmark();
    println!("Table 3: experiment results on pattern matching");
    println!(
        "{:<18} {:>10} {:>6} {:>6} {:>6} {:>6}",
        "Implementation", "Frequency", "LUT", "FF", "BRAM", "DSP"
    );
    println!("{:-<58}", "");

    let rows: [(&str, OptimizationOptions); 3] = [
        ("Original", OptimizationOptions::none()),
        ("Opt. Data", OptimizationOptions::data_only()),
        ("Opt. Data & Ctrl", OptimizationOptions::all()),
    ];
    let mut freqs = Vec::new();
    for (name, options) in rows {
        let r = run_benchmark(&bench, options);
        println!(
            "{:<18} {:>7.0} MHz {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}%",
            name,
            r.fmax_mhz,
            r.utilization.lut_pct,
            r.utilization.ff_pct,
            r.utilization.bram_pct,
            r.utilization.dsp_pct,
        );
        freqs.push(r.fmax_mhz);
    }
    println!("{:-<58}", "");
    println!("paper: 187 MHz / 208 MHz / 278 MHz — both optimizations needed");
    if freqs[2] > freqs[1] && freqs[1] >= freqs[0] * 0.98 {
        println!("shape reproduced: data-only helps partially, data+ctrl most");
    }
}
