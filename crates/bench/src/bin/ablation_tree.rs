//! Ablation: explicit source-level broadcast trees (the paper's rejected
//! §4.1 alternative) vs broadcast-aware scheduling + physical register
//! duplication, on the genome kernel at unroll 64.
//!
//! The paper: "it is better to let the physical design tools handle the
//! register duplication during placement, in which phase the delay model
//! and knowledge of layout are more comprehensive and accurate" — and the
//! tree "needs iterative tuning for a satisfying tree topology" (ref 21).

use hlsb::ir::tree::insert_broadcast_tree;
use hlsb::ir::unroll::unroll_loop;
use hlsb::ir::{Design, Kernel, Loop, OpKind};
use hlsb::{Flow, OptimizationOptions};
use hlsb_bench::SEED;
use hlsb_benchmarks::genome;
use hlsb_fabric::Device;

/// Wraps an already-unrolled loop back into a design.
fn with_body(design: &Design, lp: Loop) -> Design {
    Design {
        kernels: vec![Kernel {
            name: design.kernels[0].name.clone(),
            loops: vec![lp],
            static_latency: design.kernels[0].static_latency,
        }],
        ..design.clone()
    }
}

fn main() {
    let device = Device::ultrascale_plus_vu9p();
    let design = genome::design(32);
    let unrolled = unroll_loop(&design.kernels[0].loops[0]).looop;

    let run = |d: Design, opts: OptimizationOptions| {
        Flow::new(d)
            .device(device.clone())
            .clock_mhz(333.0)
            .options(opts)
            .seed(SEED)
            .run()
            .expect("flow")
    };

    println!("Ablation: handling a 32-way data broadcast (genome kernel)\n");
    let orig = run(
        with_body(&design, unrolled.clone()),
        OptimizationOptions::none(),
    );
    println!(
        "{:<34} {:>4.0} MHz  (FF {:.1}%)",
        "no fix (baseline)", orig.fmax_mhz, orig.utilization.ff_pct
    );

    let aware = run(
        with_body(&design, unrolled.clone()),
        OptimizationOptions::data_only(),
    );
    println!(
        "{:<34} {:>4.0} MHz  (FF {:.1}%, {} regs inserted)",
        "broadcast-aware scheduling (ours)",
        aware.fmax_mhz,
        aware.utilization.ff_pct,
        aware.inserted_regs
    );

    for arity in [4usize, 8, 16] {
        // Tree every heavily-read invariant source.
        let mut body = unrolled.body.clone();
        loop {
            let target = body
                .iter()
                .filter(|(_, i)| matches!(i.kind, OpKind::Input { invariant: true }))
                .map(|(id, _)| id)
                .find(|&id| body.fanout(id) > arity);
            match target {
                Some(id) => body = insert_broadcast_tree(&body, id, arity).0,
                None => break,
            }
        }
        let treed = Loop {
            body,
            ..unrolled.clone()
        };
        let r = run(with_body(&design, treed), OptimizationOptions::none());
        println!(
            "{:<34} {:>4.0} MHz  (FF {:.1}%)",
            format!("explicit broadcast tree, arity {arity}"),
            r.fmax_mhz,
            r.utilization.ff_pct
        );
    }
    println!(
        "\nexpected: the tree helps over the baseline but needs per-design\n\
         arity tuning and spends registers on every level; broadcast-aware\n\
         scheduling reaches comparable or better Fmax without tuning (§4.1/§6)."
    );
}
