//! Diagnostic tool: prints the critical path of a benchmark under a given
//! optimization setting, plus the run's span trace with the decision
//! provenance (which chains were split, what was pruned, where skid
//! buffers landed).
//!
//! ```text
//! explain <benchmark-name-substring> [none|data|skid|all]
//! ```

use hlsb::{Flow, OptimizationOptions};
use hlsb_bench::{find_benchmark, SEED};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("genome");
    let level = args.get(2).map(String::as_str).unwrap_or("none");
    let options = match level {
        "all" => OptimizationOptions::all(),
        "data" => OptimizationOptions::data_only(),
        "skid" => OptimizationOptions::skid_plain(),
        _ => OptimizationOptions::none(),
    };

    let bench = find_benchmark(name).unwrap_or_else(|| panic!("no benchmark matching '{name}'"));
    println!("== {} ({level}) on {} ==", bench.name, bench.device);

    let (result, netlist, placement) = Flow::new(bench.design.clone())
        .device(bench.device.clone())
        .clock_mhz(bench.clock_mhz)
        .options(options)
        .seed(SEED)
        .trace(true)
        .run_detailed()
        .expect("flow");

    println!(
        "Fmax {:.0} MHz  period {:.2} ns  depth {} cells",
        result.fmax_mhz,
        result.period_ns,
        result.timing.critical_path.len()
    );
    println!(
        "inserted_regs {}  duplicated {}  retime_moves {}  ctrl_fanout {}  mem_fanout {}  sync {}/{}",
        result.inserted_regs,
        result.duplicated_regs,
        result.retime_moves,
        result.lower_info.max_control_fanout,
        result.lower_info.max_memory_fanout,
        result.lower_info.sync_waited,
        result.lower_info.sync_inputs,
    );
    let wire = hlsb::fabric::WireModel::for_device(&bench.device);
    print!("{}", result.timing.path_text(&netlist, &placement, &wire));
    println!("stats: {}", result.stats);

    let tree = result.trace_tree().expect("flow ran with tracing enabled");
    println!();
    println!("decision provenance:");
    print!("{}", tree.render());
    if !tree.metrics.is_empty() {
        println!();
        print!("{}", tree.metrics.render());
    }
}
