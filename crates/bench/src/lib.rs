//! # hlsb-bench — experiment regenerators and performance benches
//!
//! One binary per table/figure of the paper's evaluation section:
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 — nine benchmarks, orig vs opt (freq + resources) |
//! | `table2` | Table 2 — 512-wide vector product control styles |
//! | `table3` | Table 3 — pattern matching optimization ladder |
//! | `fig09`  | Fig. 9 — predicted / calibrated / raw delay vs broadcast factor |
//! | `fig15a` | Fig. 15a — genome op-chain delay estimations vs actual |
//! | `fig15b` | Fig. 15b — genome Fmax vs unroll factor |
//! | `fig16`  | Fig. 16 — Jacobi Fmax vs pipeline length, stall vs skid |
//! | `fig17`  | Fig. 17 — inter-stage bitwidths of the (a·b)c pipeline |
//! | `fig19`  | Fig. 19 — stream-buffer Fmax vs buffer size, 3 variants |
//!
//! Criterion benches (in `benches/`) measure the flow's own runtime
//! (scheduler, placement, DP, simulation).

use hlsb::{Flow, ImplementationResult, OptimizationOptions, PlaceEffort};
use hlsb_benchmarks::Benchmark;

/// Shared deterministic seed for every experiment.
pub const SEED: u64 = 0xDAC2_2020;

/// Runs one benchmark through the flow with the given options.
///
/// # Panics
///
/// Panics if the flow fails — experiment inputs are all expected to fit.
pub fn run_benchmark(bench: &Benchmark, options: OptimizationOptions) -> ImplementationResult {
    run_benchmark_with(bench, options, PlaceEffort::Normal)
}

/// Like [`run_benchmark`] with explicit placement effort (tests use
/// `Fast`).
pub fn run_benchmark_with(
    bench: &Benchmark,
    options: OptimizationOptions,
    effort: PlaceEffort,
) -> ImplementationResult {
    Flow::new(bench.design.clone())
        .device(bench.device.clone())
        .clock_mhz(bench.clock_mhz)
        .options(options)
        .seed(SEED)
        .place_effort(effort)
        .run()
        .unwrap_or_else(|e| panic!("{} failed: {e}", bench.name))
}

/// Formats a utilization/fmax row in the Table-1 layout.
pub fn table1_row(
    name: &str,
    btype: &str,
    target: &str,
    orig: &ImplementationResult,
    opt: &ImplementationResult,
) -> String {
    format!(
        "{name:<20} {btype:<20} {target:<24} \
         {:>3.0}/{:<3.0} {:>3.0}/{:<3.0} {:>3.0}/{:<3.0} {:>3.0}/{:<3.0} \
         {:>4.0} {:>4.0} {:>+5.0}%",
        orig.utilization.lut_pct,
        opt.utilization.lut_pct,
        orig.utilization.ff_pct,
        opt.utilization.ff_pct,
        orig.utilization.bram_pct,
        opt.utilization.bram_pct,
        orig.utilization.dsp_pct,
        opt.utilization.dsp_pct,
        orig.fmax_mhz,
        opt.fmax_mhz,
        opt.gain_over(orig)
    )
}
