//! # hlsb-bench — experiment regenerators and performance benches
//!
//! One binary per table/figure of the paper's evaluation section:
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 — nine benchmarks, orig vs opt (freq + resources) |
//! | `table2` | Table 2 — 512-wide vector product control styles |
//! | `table3` | Table 3 — pattern matching optimization ladder |
//! | `fig09`  | Fig. 9 — predicted / calibrated / raw delay vs broadcast factor |
//! | `fig15a` | Fig. 15a — genome op-chain delay estimations vs actual |
//! | `fig15b` | Fig. 15b — genome Fmax vs unroll factor |
//! | `fig16`  | Fig. 16 — Jacobi Fmax vs pipeline length, stall vs skid |
//! | `fig17`  | Fig. 17 — inter-stage bitwidths of the (a·b)c pipeline |
//! | `fig19`  | Fig. 19 — stream-buffer Fmax vs buffer size, 3 variants |
//!
//! Plain timing benches (in `benches/`, `cargo bench`) measure the flow's
//! own runtime (scheduler, placement, DP, simulation) with a
//! dependency-free `std::time::Instant` harness — the container that
//! builds this workspace has no network access, so no external bench
//! framework is used.

use hlsb::{Flow, ImplementationResult, OptimizationOptions, Partitioning, PassTrace, PlaceEffort};
use hlsb_benchmarks::Benchmark;

/// Shared deterministic seed for every experiment.
pub const SEED: u64 = 0xDAC2_2020;

/// Parses a `--partitions` CLI value: `off` (flat placement), `auto`
/// (island count from netlist size and device geometry), or a fixed
/// island count. Returns `None` for anything else.
pub fn parse_partitions(s: &str) -> Option<Partitioning> {
    match s {
        "off" => Some(Partitioning::Off),
        "auto" => Some(Partitioning::Auto),
        n => n.parse().ok().map(Partitioning::Fixed),
    }
}

// Benchmark resolution moved into `hlsb-benchmarks` so the compile-farm
// server (`hlsb-serve`) can address designs by name too; re-exported here
// so the experiment binaries keep their import paths.
pub use hlsb_benchmarks::{find_benchmark, synthetic_benchmarks};

/// The flow for one benchmark at its paper settings, ready to run (or to
/// hand to [`hlsb::FlowSession::run_many`] alongside its variants).
pub fn benchmark_flow(bench: &Benchmark, options: OptimizationOptions) -> Flow {
    Flow::new(bench.design.clone())
        .device(bench.device.clone())
        .clock_mhz(bench.clock_mhz)
        .options(options)
        .seed(SEED)
}

/// Runs one benchmark through the flow with the given options.
///
/// # Panics
///
/// Panics if the flow fails — experiment inputs are all expected to fit.
pub fn run_benchmark(bench: &Benchmark, options: OptimizationOptions) -> ImplementationResult {
    run_benchmark_with(bench, options, PlaceEffort::Normal)
}

/// Like [`run_benchmark`] with explicit placement effort (tests use
/// `Fast`).
pub fn run_benchmark_with(
    bench: &Benchmark,
    options: OptimizationOptions,
    effort: PlaceEffort,
) -> ImplementationResult {
    benchmark_flow(bench, options)
        .place_effort(effort)
        .run()
        .unwrap_or_else(|e| panic!("{} failed: {e}", bench.name))
}

/// Unwraps a [`hlsb::FlowSession::run_many`] result batch, panicking
/// with the failing label on error — experiment inputs all fit.
pub fn expect_all(
    labels: &[String],
    results: Vec<Result<ImplementationResult, hlsb::FlowError>>,
) -> Vec<ImplementationResult> {
    results
        .into_iter()
        .zip(labels)
        .map(|(r, label)| r.unwrap_or_else(|e| panic!("{label} failed: {e}")))
        .collect()
}

/// Where-the-time-went footer for an experiment binary: per-pass wall
/// times and counters accumulated over all runs, plus the session's
/// per-stage cache hit rates (front-end reuse is what makes variant
/// sweeps cheap, so it is reported separately from schedule reuse).
/// In-memory hits (no rebuild) and on-disk store hits (rebuilt, but the
/// persistent store already knew the artifact fingerprint) are reported
/// separately — a cold run against a warm store shows up as store hits,
/// not as misses.
pub fn pass_summary(results: &[ImplementationResult], session: &hlsb::FlowSession) -> String {
    let mut total = PassTrace::default();
    for r in results {
        total.merge(&r.trace);
    }
    let stats = session.cache_stats_by_stage();
    format!(
        "pass totals over {} runs ({} threads; cache: front-end {} hits + {} store hits / \
         {} misses ({:.0}%), schedule {} hits + {} store hits / {} misses ({:.0}%)):\n{total}",
        results.len(),
        session.threads(),
        stats.front_end.hits,
        stats.front_end.disk_hits,
        stats.front_end.misses,
        stats.front_end.hit_rate() * 100.0,
        stats.schedule.hits,
        stats.schedule.disk_hits,
        stats.schedule.misses,
        stats.schedule.hit_rate() * 100.0,
    )
}

/// Minimal timing harness for the `benches/` targets: runs `f` once to
/// warm up, then `iters` timed iterations, and prints min / mean / max
/// wall time. Keeps results observable via [`std::hint::black_box`].
pub fn time_it<T>(label: &str, iters: u32, mut f: impl FnMut() -> T) {
    std::hint::black_box(f());
    let mut samples_ms = Vec::with_capacity(iters as usize);
    for _ in 0..iters.max(1) {
        let t0 = std::time::Instant::now();
        std::hint::black_box(f());
        samples_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let min = samples_ms.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples_ms.iter().copied().fold(0.0f64, f64::max);
    let mean = samples_ms.iter().sum::<f64>() / samples_ms.len() as f64;
    println!("{label:<32} min {min:>9.3} ms   mean {mean:>9.3} ms   max {max:>9.3} ms");
}

/// Formats a utilization/fmax row in the Table-1 layout.
pub fn table1_row(
    name: &str,
    btype: &str,
    target: &str,
    orig: &ImplementationResult,
    opt: &ImplementationResult,
) -> String {
    format!(
        "{name:<20} {btype:<20} {target:<24} \
         {:>3.0}/{:<3.0} {:>3.0}/{:<3.0} {:>3.0}/{:<3.0} {:>3.0}/{:<3.0} \
         {:>4.0} {:>4.0} {:>+5.0}%",
        orig.utilization.lut_pct,
        opt.utilization.lut_pct,
        orig.utilization.ff_pct,
        opt.utilization.ff_pct,
        orig.utilization.bram_pct,
        opt.utilization.bram_pct,
        orig.utilization.dsp_pct,
        opt.utilization.dsp_pct,
        orig.fmax_mhz,
        opt.fmax_mhz,
        opt.gain_over(orig)
    )
}
