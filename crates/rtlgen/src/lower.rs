//! Top-level lowering entry point.

use crate::control::{attach_call_sync, attach_pipeline_control};
use crate::datapath::{lower_loop, LoopArtifacts};
use crate::info::LowerInfo;
use crate::memory::make_banks;
use crate::options::RtlOptions;
use hlsb_delay::DelayModel;
use hlsb_ir::{Design, KernelId, Loop, OpKind};
use hlsb_netlist::{Cell, CellId, Netlist};
use hlsb_sched::{MemAccessPlan, Schedule};
use std::collections::HashSet;

/// One loop after scheduling (possibly rewritten by broadcast-aware
/// scheduling): the final body, its schedule, and the memory pipelining
/// plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledLoop {
    /// The final loop body (unrolled, with inserted registers).
    pub looop: Loop,
    /// Its schedule.
    pub schedule: Schedule,
    /// Extra memory pipelining decisions.
    pub mem_plan: MemAccessPlan,
}

/// A design plus the schedules of every loop, ready for lowering.
///
/// This is a *view*: lowering only reads the scheduled loops, so callers
/// that share schedule artifacts (e.g. a pass-pipeline cache) can lower
/// without cloning the design or the schedules. Use
/// [`OwnedScheduledDesign`] when the pieces have no other home.
#[derive(Debug, Clone, Copy)]
pub struct ScheduledDesign<'a> {
    /// The design (post any dataflow splitting).
    pub design: &'a Design,
    /// `loops[k][l]` is the scheduled form of kernel `k`'s loop `l`.
    pub loops: &'a [Vec<ScheduledLoop>],
}

/// Owning variant of [`ScheduledDesign`], for callers that build the
/// schedule in place (tests, one-shot lowering).
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedScheduledDesign {
    /// The design (post any dataflow splitting).
    pub design: Design,
    /// `loops[k][l]` is the scheduled form of kernel `k`'s loop `l`.
    pub loops: Vec<Vec<ScheduledLoop>>,
}

impl OwnedScheduledDesign {
    /// The borrowed view [`lower_design`] consumes.
    pub fn view(&self) -> ScheduledDesign<'_> {
        ScheduledDesign {
            design: &self.design,
            loops: &self.loops,
        }
    }
}

/// The lowering result.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredDesign {
    /// The generated netlist.
    pub netlist: Netlist,
    /// Structural metadata.
    pub info: LowerInfo,
}

/// Shared lowering context.
pub(crate) struct Ctx<'a> {
    pub nl: Netlist,
    pub info: LowerInfo,
    pub design: &'a Design,
    pub options: &'a RtlOptions,
    /// Bank cells per array.
    pub array_banks: Vec<Vec<CellId>>,
    /// Storage cell per FIFO (created lazily).
    pub fifo_cells: Vec<Option<CellId>>,
}

impl<'a> Ctx<'a> {
    /// The storage cell of a FIFO, creating it on first use.
    pub fn fifo_cell(&mut self, fid: hlsb_ir::FifoId) -> CellId {
        if let Some(c) = self.fifo_cells[fid.index()] {
            return c;
        }
        let f = self.design.fifo(fid);
        let bits = f.depth as u64 * u64::from(f.elem.bits());
        let mut cell = Cell::bram(format!("fifo_{}", f.name), f.elem.bits(), 0);
        if bits >= 4096 {
            cell.brams = bits.div_ceil(36_864) as u32;
        } else {
            // Small FIFOs are SRL/register based; they still behave as an
            // opaque sequential macro (not duplicable by fanout opt).
            cell.luts = (bits / 32).max(4) as u32;
            cell.ffs = f.elem.bits();
        }
        let id = self.nl.add_cell(cell);
        // FIFO macros are the dataflow seams: island partitioning cuts the
        // netlist at exactly these cells.
        self.info.seam_cells.push(id);
        self.fifo_cells[fid.index()] = Some(id);
        id
    }
}

/// Kernels that are invoked via `call` (lowered per call site, not
/// standalone).
fn called_kernels(sd: &ScheduledDesign<'_>) -> HashSet<KernelId> {
    let mut out = HashSet::new();
    for sls in sd.loops {
        for sl in sls {
            for (_, inst) in sl.looop.body.iter() {
                if let OpKind::Call(k) = inst.kind {
                    out.insert(k);
                }
            }
        }
    }
    out
}

/// Lowers a scheduled design to a netlist.
///
/// `model` supplies per-cell intrinsic logic delays (typically the
/// predicted model — the *wire* component is the physical flow's job).
///
/// # Panics
///
/// Panics if `sd.loops` does not match the design's kernels, or if call
/// nesting exceeds the supported depth.
pub fn lower_design(
    sd: &ScheduledDesign<'_>,
    options: &RtlOptions,
    model: &impl DelayModel,
) -> LoweredDesign {
    assert_eq!(
        sd.loops.len(),
        sd.design.kernels.len(),
        "one schedule set per kernel required"
    );
    let mut ctx = Ctx {
        nl: Netlist::new(sd.design.name.clone()),
        info: LowerInfo::default(),
        design: sd.design,
        options,
        array_banks: Vec::new(),
        fifo_cells: vec![None; sd.design.fifos.len()],
    };
    for array in &sd.design.arrays {
        let banks = make_banks(&mut ctx.nl, array);
        ctx.array_banks.push(banks);
    }

    let called = called_kernels(sd);
    for (ki, kernel) in sd.design.kernels.iter().enumerate() {
        if called.contains(&KernelId(ki as u32)) {
            continue; // instantiated at its call sites
        }
        let mut prev_done: Option<CellId> = None;
        for (li, sl) in sd.loops[ki].iter().enumerate() {
            let lname = format!("{}_{li}", kernel.name);
            let art: LoopArtifacts = lower_loop(&mut ctx, sd, sl, &lname, model);
            ctx.info.pipeline_stages += sl.schedule.depth;

            // Sequential FSM: each loop starts when the previous is done.
            let fsm = ctx
                .nl
                .add_cell(Cell::ff(format!("{}_{li}_fsm", kernel.name), 1));
            if let Some(prev) = prev_done {
                ctx.nl.connect(prev, &[fsm]);
            }
            if !art.entry_ffs.is_empty() {
                ctx.nl.connect(fsm, &art.entry_ffs.clone());
            }
            prev_done = Some(fsm);

            attach_pipeline_control(&mut ctx, sl, &art, &lname);
            attach_call_sync(&mut ctx, &art, &lname);
        }
    }

    debug_assert!(ctx.nl.comb_topo_order().is_some(), "combinational cycle");
    LoweredDesign {
        netlist: ctx.nl,
        info: ctx.info,
    }
}
