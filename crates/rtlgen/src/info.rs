//! Structural metadata of a lowered design.

use hlsb_ir::{Loop, OpKind};
use hlsb_sched::Schedule;

/// Storage primitive chosen for a skid buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkidStorage {
    /// Block RAM (deep or wide buffers).
    Bram,
    /// Flip-flops (shallow buffers).
    Ff,
}

impl SkidStorage {
    /// Lower-case label for traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            SkidStorage::Bram => "bram",
            SkidStorage::Ff => "ff",
        }
    }
}

/// One skid-buffer placement decision (§4.3, Fig. 11/12): where the DP (or
/// the trivial end-of-pipeline policy) cut the loop, and what it cost.
#[derive(Debug, Clone, PartialEq)]
pub struct SkidDecision {
    /// Lowered loop instance name (`<kernel>_<loop idx>`).
    pub looop: String,
    /// Pipeline stage boundary the buffer sits at (1-based, `== depth`
    /// for the end-of-pipeline policy).
    pub cut_stage: usize,
    /// Buffer depth in slots: segment length + 1 + the registered-gate
    /// pipeline slack + the inter-island crossing slack.
    pub depth_slots: u64,
    /// Extra slots provisioned for registered inter-island crossings
    /// (`RtlOptions::crossing_slots`; 0 for flat placement). Recorded so
    /// the VC02 contract check audits the crossing provisioning, not just
    /// the base `N + 1` bound.
    pub crossing_slots: u64,
    /// Width of the buffered stage boundary, bits.
    pub width_bits: u64,
    /// Total storage bits.
    pub bits: u64,
    /// Storage primitive.
    pub storage: SkidStorage,
    /// Whether the min-area DP chose the cut (vs the default single
    /// end-of-pipeline buffer).
    pub min_area: bool,
}

/// One done-signal synchronization decision (§4.2): for each parallel PE,
/// whether its `done` stays in the wait-reduce tree, with the latency
/// evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncDecision {
    /// Lowered loop instance name.
    pub looop: String,
    /// PE module name.
    pub module: String,
    /// The module's static latency, if fixed.
    pub latency: Option<u64>,
    /// Whether the done signal is waited on (false = pruned).
    pub waited: bool,
    /// The largest static latency among the waited set — the evidence
    /// that covers every pruned module.
    pub cover_latency: Option<u64>,
}

/// Metadata collected while lowering, consumed by the bench harness and
/// the integration tests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LowerInfo {
    /// Total pipeline stages across all lowered loops.
    pub pipeline_stages: u32,
    /// Bits of skid-buffer storage instantiated (0 for stall control).
    pub skid_buffer_bits: u64,
    /// Largest fanout of any control (stall/start) net.
    pub max_control_fanout: usize,
    /// Largest fanout of any memory data/address broadcast net.
    pub max_memory_fanout: usize,
    /// Number of done signals entering sync reduce trees (before pruning).
    pub sync_inputs: usize,
    /// Number of done signals actually waited on (after pruning).
    pub sync_waited: usize,
    /// Per-loop inter-stage widths (bits), as used by the min-area DP.
    pub stage_width_profiles: Vec<Vec<u64>>,
    /// Per-buffer skid placements, in lowering order.
    pub skid_decisions: Vec<SkidDecision>,
    /// Per-module sync prune/keep decisions, in lowering order.
    pub sync_decisions: Vec<SyncDecision>,
    /// Netlist cells of the inter-kernel FIFO storage macros, in creation
    /// order — the dataflow *seams*. Island partitioning
    /// (`hlsb-place::partition`) prefers to cut the netlist at exactly
    /// these cells, so kernels never straddle an island boundary.
    pub seam_cells: Vec<hlsb_netlist::CellId>,
}

/// Inter-stage data widths of a scheduled loop: entry `b` is the number of
/// live bits crossing the boundary at the end of cycle `b` (0-based), for
/// `b` in `0..depth`. The final entry is the loop's output width.
///
/// A value is live across boundary `b` if it is produced in or before
/// cycle `b` and consumed after `b`; `Output` values stay live to the end
/// of the pipeline. This is exactly the data the paper's Fig. 17 plots and
/// the min-area skid-buffer DP consumes.
pub fn stage_widths(lp: &Loop, schedule: &Schedule) -> Vec<u64> {
    let depth = schedule.depth as usize;
    let dfg = &lp.body;
    let mut widths = vec![0u64; depth];

    for (id, inst) in dfg.iter() {
        if inst.kind.is_sink() && !matches!(inst.kind, OpKind::Output) {
            continue; // stores/FIFO writes produce no live value
        }
        let op = schedule.op(id);
        let done = op.done_cycle() as usize;
        // A latent operation (register, BRAM, multi-cycle operator) holds
        // the value across the boundaries it spans; combinational values
        // only occupy storage once transported to a later cycle.
        let start = if op.latency >= 1 {
            op.cycle as usize
        } else {
            done
        };
        // Last cycle in which the value is read.
        let mut last_use = done;
        for &u in dfg.users(id) {
            last_use = last_use.max(schedule.op(u).cycle as usize);
        }
        if matches!(inst.kind, OpKind::Output) {
            // Outputs remain live through the end of the pipeline.
            last_use = depth;
        }
        for w in widths.iter_mut().take(last_use.min(depth)).skip(start) {
            *w += u64::from(inst.ty.bits());
        }
    }

    // The last boundary (pipeline output) must at least carry the outputs.
    if depth > 0 && widths[depth - 1] == 0 {
        let out_bits: u64 = dfg
            .iter()
            .filter(|(_, i)| matches!(i.kind, OpKind::Output))
            .map(|(_, i)| u64::from(i.ty.bits()))
            .sum();
        widths[depth - 1] = out_bits.max(1);
    }
    for w in &mut widths {
        *w = (*w).max(1);
    }
    widths
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsb_delay::HlsPredictedModel;
    use hlsb_ir::builder::DesignBuilder;
    use hlsb_ir::DataType;
    use hlsb_sched::schedule_loop;

    #[test]
    fn widths_track_live_values() {
        // in(32) -> add -> reg -> reg -> out: value stays live across all
        // boundaries; each boundary carries 32 bits (+ the still-live input
        // where applicable).
        let mut b = DesignBuilder::new("w");
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("l", 4, 1);
        let a = l.varying_input("a", DataType::Int(32));
        let c = l.varying_input("c", DataType::Int(32));
        let s = l.add(a, c);
        let r1 = l.reg(s);
        let r2 = l.reg(r1);
        l.output("o", r2);
        l.finish();
        k.finish();
        let d = b.finish().expect("valid");
        let lp = &d.kernels[0].loops[0];
        let sched = schedule_loop(lp, &d, &HlsPredictedModel::new(), 3.33);
        let widths = stage_widths(lp, &sched);
        assert_eq!(widths.len(), sched.depth as usize);
        // Every boundary carries exactly one 32-bit live value.
        assert!(widths.iter().all(|&w| w == 32), "{widths:?}");
    }

    #[test]
    fn waist_shows_up() {
        // Wide input collapses to a 1-bit flag mid-pipeline, then the flag
        // is carried to the end: the waist must appear in the profile.
        let mut b = DesignBuilder::new("waist");
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("l", 4, 1);
        let a = l.varying_input("a", DataType::Int(512));
        let c = l.varying_input("c", DataType::Int(512));
        let cmpv = l.cmp(hlsb_ir::CmpPred::Lt, a, c); // 1 bit
        let r1 = l.reg(cmpv);
        let r2 = l.reg(r1);
        l.output("o", r2);
        l.finish();
        k.finish();
        let d = b.finish().expect("valid");
        let lp = &d.kernels[0].loops[0];
        let sched = schedule_loop(lp, &d, &HlsPredictedModel::new(), 3.33);
        let widths = stage_widths(lp, &sched);
        let last = *widths.last().unwrap();
        assert_eq!(last, 1, "{widths:?}");
        assert!(widths[0] >= 1);
    }
}
