//! Datapath lowering: instructions → cells, pipeline registers, PE calls.

use crate::lower::{Ctx, ScheduledDesign, ScheduledLoop};
use crate::memory::{lower_load, lower_store};
use hlsb_delay::{classify, DelayModel, OpClass};
use hlsb_ir::{DataType, InstId, KernelId, OpKind};
use hlsb_netlist::{Cell, CellId};
use std::collections::HashMap;

/// One inlined PE call site (for synchronization generation).
#[derive(Debug, Clone, PartialEq)]
pub struct CallSite {
    /// The PE's input-stage registers (start-broadcast sinks).
    pub entry_ffs: Vec<CellId>,
    /// The cell producing the PE's result (drives the done logic).
    pub result: CellId,
    /// Statically known latency of the callee, if any.
    pub static_latency: Option<u64>,
}

/// Everything control generation needs about a lowered loop.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoopArtifacts {
    /// All registers belonging to the loop (stall-enable sinks).
    pub loop_ffs: Vec<CellId>,
    /// The cycle-0 input registers (skid gate / FSM start sinks).
    pub entry_ffs: Vec<CellId>,
    /// FIFOs read or written by the loop (status sources).
    pub fifos: Vec<hlsb_ir::FifoId>,
    /// Arrays accessed (their banks join the stall-enable net).
    pub arrays: Vec<hlsb_ir::ArrayId>,
    /// Inlined PE call sites.
    pub calls: Vec<CallSite>,
    /// Inter-stage width profile (for skid buffer placement).
    pub stage_widths: Vec<u64>,
}

/// Builds the word-level cell for a computational operation.
fn op_cell(name: String, kind: OpKind, ty: DataType, model: &impl DelayModel) -> Cell {
    let w = ty.bits();
    let latency = model.latency(kind, ty).max(1);
    // Multi-cycle operators are internally pipelined: per-stage delay.
    let stage_delay = model.delay_ns(kind, ty, 1) / f64::from(latency);
    match classify(kind, ty) {
        OpClass::IntMul => {
            let d = w.div_ceil(18).pow(2);
            Cell::dsp(name, w, stage_delay, d)
        }
        OpClass::FloatMul => {
            let d = if ty == DataType::Float64 { 11 } else { 3 };
            let mut c = Cell::dsp(name, w, stage_delay, d);
            c.luts = w;
            c
        }
        OpClass::FloatAddSub => {
            let mut c = Cell::dsp(name, w, stage_delay, 2);
            c.luts = w * 4;
            c
        }
        OpClass::FloatDiv => Cell::comb(name, w, stage_delay, w * 25),
        OpClass::Logic => Cell::comb(name, w, stage_delay, w.div_ceil(2).max(1)),
        OpClass::Mux => Cell::comb(name, w, stage_delay, w),
        // IntAlu and anything else LUT-based.
        _ => Cell::comb(name, w, stage_delay, w),
    }
}

/// Lowers one scheduled loop into the context's netlist.
pub(crate) fn lower_loop(
    ctx: &mut Ctx<'_>,
    sd: &ScheduledDesign<'_>,
    sl: &ScheduledLoop,
    prefix: &str,
    model: &impl DelayModel,
) -> LoopArtifacts {
    let mut art = LoopArtifacts::default();
    let widths = crate::info::stage_widths(&sl.looop, &sl.schedule);
    ctx.info.stage_width_profiles.push(widths.clone());
    art.stage_widths = widths;
    lower_body(ctx, sd, sl, prefix, model, &mut art, &[], 0);
    art
}

/// Lowers a loop body; `bound_inputs` maps the body's varying inputs to
/// pre-existing cells (used when inlining PE calls).
#[allow(clippy::too_many_arguments)]
fn lower_body(
    ctx: &mut Ctx<'_>,
    sd: &ScheduledDesign<'_>,
    sl: &ScheduledLoop,
    prefix: &str,
    model: &impl DelayModel,
    art: &mut LoopArtifacts,
    bound_inputs: &[CellId],
    depth: usize,
) -> Option<CellId> {
    assert!(depth <= 4, "call nesting too deep");
    let dfg = &sl.looop.body;
    let schedule = &sl.schedule;
    let mut value: Vec<Option<CellId>> = vec![None; dfg.len()];
    // Pipeline-register chains: (producer, cycles after done) -> FF.
    let mut chains: HashMap<(InstId, u32), CellId> = HashMap::new();
    let mut bound_iter = bound_inputs.iter().copied();
    let mut last_output: Option<CellId> = None;

    // Resolves the cell feeding `user_cycle` with operand `op`'s value,
    // inserting pipeline registers for cross-cycle transport.
    macro_rules! value_at {
        ($op:expr, $user_cycle:expr) => {{
            let op: InstId = $op;
            let user_cycle: u32 = $user_cycle;
            let done = schedule.op(op).done_cycle();
            assert!(user_cycle >= done, "consumer before producer");
            let base = value[op.index()].expect("operand lowered");
            let gap = user_cycle - done;
            if gap >= 4 {
                // Long transport lowers to one SRL-style delay line shared
                // by every tap of this value (as synthesis maps deep shift
                // registers): storage is LUT-based (SRL32) plus one output
                // register, and taps at different depths share it.
                const DL_KEY: u32 = u32::MAX;
                let srl_luts = |w: u32, g: u32| w.saturating_mul(g.div_ceil(32));
                match chains.get(&(op, DL_KEY)) {
                    Some(&c) => {
                        let w = ctx.nl.cell(c).width;
                        let grown = srl_luts(w, gap);
                        if grown > ctx.nl.cell(c).luts {
                            ctx.nl.cell_mut(c).luts = grown;
                        }
                        c
                    }
                    None => {
                        let w = ctx.nl.cell(base).width;
                        let mut c = Cell::ff(format!("{prefix}_dl{}", op.index()), w);
                        c.luts = srl_luts(w, gap);
                        let dl = ctx.nl.add_cell(c);
                        ctx.nl.connect(base, &[dl]);
                        art.loop_ffs.push(dl);
                        chains.insert((op, DL_KEY), dl);
                        dl
                    }
                }
            } else {
                let mut prev = base;
                for k in 1..=gap {
                    let ff = match chains.get(&(op, k)) {
                        Some(&ff) => ff,
                        None => {
                            let w = ctx.nl.cell(base).width;
                            let ff = ctx
                                .nl
                                .add_cell(Cell::ff(format!("{prefix}_p{}_{k}", op.index()), w));
                            art.loop_ffs.push(ff);
                            chains.insert((op, k), ff);
                            // Wire each new chain link exactly once.
                            ctx.nl.connect(prev, &[ff]);
                            ff
                        }
                    };
                    prev = ff;
                }
                prev
            }
        }};
    }

    for (id, inst) in dfg.iter() {
        let op = schedule.op(id);
        let name = if inst.name.is_empty() {
            format!("{prefix}_i{}", id.index())
        } else {
            format!("{prefix}_{}", inst.name)
        };
        let cell = match inst.kind {
            OpKind::Const => Some(ctx.nl.add_cell(Cell::constant(name, inst.ty.bits()))),
            OpKind::Input { .. } | OpKind::IndVar => {
                if let Some(bound) = bound_iter.next() {
                    // PE input bound to the caller's operand cell.
                    Some(bound)
                } else {
                    let ff = ctx.nl.add_cell(Cell::ff(name, inst.ty.bits()));
                    art.loop_ffs.push(ff);
                    // Only cycle-0 inputs are pipeline *entries* (gated by
                    // skid control / started by the FSM); later-stage port
                    // registers follow the valid chain.
                    if op.cycle == 0 {
                        art.entry_ffs.push(ff);
                    }
                    Some(ff)
                }
            }
            OpKind::Reg => {
                let src = value_at!(inst.operands[0], op.cycle);
                let ff = ctx.nl.add_cell(Cell::ff(name, inst.ty.bits()));
                ctx.nl.connect(src, &[ff]);
                art.loop_ffs.push(ff);
                Some(ff)
            }
            OpKind::Repack => {
                // Free bit-slicing: alias the operand's cell.
                Some(value_at!(inst.operands[0], op.done_cycle()))
            }
            OpKind::Output => {
                let src = value_at!(inst.operands[0], op.cycle);
                let out = ctx.nl.add_cell(Cell::output(name, inst.ty.bits()));
                ctx.nl.connect(src, &[out]);
                last_output = Some(src);
                // Downstream uses of the output value alias the source —
                // port cells are timing end points and never drive nets.
                Some(src)
            }
            OpKind::Load(aid) => {
                let addr = value_at!(inst.operands[0], op.cycle);
                let extra = sl.mem_plan.stages(id);
                let v = lower_load(ctx, aid, addr, extra, &name, art);
                if !art.arrays.contains(&aid) {
                    art.arrays.push(aid);
                }
                Some(v)
            }
            OpKind::Store(aid) => {
                let addr = value_at!(inst.operands[0], op.cycle);
                let data = value_at!(inst.operands[1], op.cycle);
                let extra = sl.mem_plan.stages(id);
                lower_store(ctx, aid, addr, data, extra, &name, art);
                if !art.arrays.contains(&aid) {
                    art.arrays.push(aid);
                }
                None
            }
            OpKind::FifoRead(fid) => {
                // Each read gets the FIFO's output register: consumers hang
                // off a plain FF (which physical fanout optimization can
                // duplicate), not off the FIFO storage macro.
                let cell = ctx.fifo_cell(fid);
                let q = ctx
                    .nl
                    .add_cell(Cell::ff(format!("{name}_q"), inst.ty.bits()));
                ctx.nl.connect(cell, &[q]);
                art.loop_ffs.push(q);
                if !art.fifos.contains(&fid) {
                    art.fifos.push(fid);
                }
                Some(q)
            }
            OpKind::FifoWrite(fid) => {
                let data = value_at!(inst.operands[0], op.cycle);
                let cell = ctx.fifo_cell(fid);
                ctx.nl.connect(data, &[cell]);
                if !art.fifos.contains(&fid) {
                    art.fifos.push(fid);
                }
                None
            }
            OpKind::Call(callee) => {
                let srcs: Vec<CellId> = inst
                    .operands
                    .iter()
                    .map(|&o| value_at!(o, op.cycle))
                    .collect();
                Some(lower_call(
                    ctx, sd, callee, &srcs, id, prefix, model, art, depth,
                ))
            }
            // Computational operations.
            kind => {
                let mut cell = op_cell(name.clone(), kind, inst.ty, model);
                let latency = model.latency(kind, inst.ty);
                let operands: Vec<CellId> = inst
                    .operands
                    .iter()
                    .map(|&o| value_at!(o, op.cycle))
                    .collect();
                // Multi-cycle ops register their output (internal pipeline
                // registers are charged to the output FF).
                if latency >= 1 {
                    let opc = ctx.nl.add_cell(cell);
                    for &src in &operands {
                        ctx.nl.connect(src, &[opc]);
                    }
                    let mut ff = Cell::ff(format!("{name}_q"), inst.ty.bits());
                    ff.ffs = inst.ty.bits() * latency;
                    let ffc = ctx.nl.add_cell(ff);
                    ctx.nl.connect(opc, &[ffc]);
                    art.loop_ffs.push(ffc);
                    Some(ffc)
                } else {
                    cell.name = name;
                    let opc = ctx.nl.add_cell(cell);
                    for &src in &operands {
                        ctx.nl.connect(src, &[opc]);
                    }
                    Some(opc)
                }
            }
        };
        value[id.index()] = cell;
    }

    last_output
}

/// Inlines a PE call: lowers the callee's loops with the call operands
/// bound to its inputs.
#[allow(clippy::too_many_arguments)]
fn lower_call(
    ctx: &mut Ctx<'_>,
    sd: &ScheduledDesign<'_>,
    callee: KernelId,
    srcs: &[CellId],
    call_inst: InstId,
    prefix: &str,
    model: &impl DelayModel,
    art: &mut LoopArtifacts,
    depth: usize,
) -> CellId {
    let kernel = ctx.design.kernel(callee);
    // Register the call operands at the PE boundary: these are the PE's
    // entry FFs (the start-broadcast sinks).
    let operand_cells: Vec<CellId> = srcs
        .iter()
        .enumerate()
        .map(|(i, &src)| {
            let w = ctx.nl.cell(src).width;
            let ff = ctx
                .nl
                .add_cell(Cell::ff(format!("{prefix}_{}_arg{i}", kernel.name), w));
            ctx.nl.connect(src, &[ff]);
            art.loop_ffs.push(ff);
            ff
        })
        .collect();

    let mut sub_art = LoopArtifacts::default();
    let mut result = None;
    for (li, sub_sl) in sd.loops[callee.index()].iter().enumerate() {
        result = lower_body(
            ctx,
            sd,
            sub_sl,
            &format!("{prefix}_{}{li}_c{}", kernel.name, call_inst.index()),
            model,
            &mut sub_art,
            &operand_cells,
            depth + 1,
        );
    }
    // PE-internal registers join the caller's control domain.
    art.loop_ffs.extend(sub_art.loop_ffs.iter().copied());
    for f in sub_art.fifos {
        if !art.fifos.contains(&f) {
            art.fifos.push(f);
        }
    }
    for a in sub_art.arrays {
        if !art.arrays.contains(&a) {
            art.arrays.push(a);
        }
    }

    let result = result.unwrap_or(operand_cells.first().copied().unwrap_or_else(|| {
        ctx.nl
            .add_cell(Cell::constant(format!("{prefix}_{}_void", kernel.name), 1))
    }));
    art.calls.push(CallSite {
        entry_ffs: operand_cells,
        result,
        static_latency: kernel.static_latency,
    });
    result
}
