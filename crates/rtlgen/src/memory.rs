//! Memory subsystem lowering: BRAM banks, broadcast nets, distribution and
//! collection trees.
//!
//! A large array maps to many physically scattered BRAM units (paper §3.1,
//! example #2). Its write port is a *data/address broadcast* from the
//! source cell to every bank; its read port is a *collection* multiplexer
//! tree. When broadcast-aware scheduling planned extra stages
//! ([`hlsb_sched::MemAccessPlan`]), the broadcast goes through a register
//! tree (whose register levels physical fanout optimization can further
//! duplicate) and the mux tree is registered per level.

use crate::datapath::LoopArtifacts;
use crate::lower::Ctx;
use hlsb_ir::{Array, ArrayId};
use hlsb_netlist::{Cell, CellId, Netlist};

/// Max 36 Kb units represented by one bank cell (keeps huge arrays within
/// a placeable cell count while preserving the broadcast structure).
const UNITS_PER_CELL_TARGET: usize = 192;

/// Fan-in of one level of the read-collection mux tree.
const MUX_FANIN: usize = 6;

/// Creates the bank cells of an array.
pub(crate) fn make_banks(nl: &mut Netlist, array: &Array) -> Vec<CellId> {
    let units = array.bram_units();
    if units == 0 {
        // Completely partitioned array: register file, one FF cell.
        let ff = nl.add_cell(Cell::ff(
            format!("arr_{}_regs", array.name),
            (array.total_bits()).min(u64::from(u32::MAX)) as u32,
        ));
        return vec![ff];
    }
    let group = units.div_ceil(UNITS_PER_CELL_TARGET).max(1);
    let cells = units.div_ceil(group);
    (0..cells)
        .map(|i| {
            let u = group.min(units - i * group);
            nl.add_cell(Cell::bram(
                format!("arr_{}_bank{i}", array.name),
                array.elem.bits(),
                u as u32,
            ))
        })
        .collect()
}

/// Connects `driver` to all `sinks` through `stages` levels of register
/// tree (0 stages = direct broadcast). Returns the created registers.
fn distribution_tree(
    ctx: &mut Ctx<'_>,
    driver: CellId,
    sinks: &[CellId],
    stages: u32,
    name: &str,
    art: &mut LoopArtifacts,
) {
    if stages == 0 || sinks.len() <= 2 {
        ctx.nl.connect(driver, sinks);
        ctx.info.max_memory_fanout = ctx.info.max_memory_fanout.max(sinks.len());
        return;
    }
    // Branching factor so that `stages` register levels reach every sink.
    let b = (sinks.len() as f64)
        .powf(1.0 / f64::from(stages + 1))
        .ceil()
        .max(2.0) as usize;
    let mut level: Vec<CellId> = vec![driver];
    let width = ctx.nl.cell(driver).width;
    for s in 0..stages {
        let next_count = (level.len() * b).min(sinks.len());
        let mut next = Vec::with_capacity(next_count);
        for i in 0..next_count {
            let ff = ctx
                .nl
                .add_cell(Cell::ff(format!("{name}_dist{s}_{i}"), width));
            art.loop_ffs.push(ff);
            next.push(ff);
        }
        // Each parent drives an even share of the next level.
        for (i, &ff) in next.iter().enumerate() {
            let parent = level[i * level.len() / next.len().max(1)];
            ctx.nl.connect(parent, &[ff]);
        }
        level = next;
    }
    // Final level drives the banks.
    for (i, &sink) in sinks.iter().enumerate() {
        let parent = level[i * level.len() / sinks.len()];
        ctx.nl.connect(parent, &[sink]);
    }
    let worst = sinks.len().div_ceil(level.len()).max(b);
    ctx.info.max_memory_fanout = ctx.info.max_memory_fanout.max(worst);
}

/// Lowers a store: address and data broadcast to every bank.
pub(crate) fn lower_store(
    ctx: &mut Ctx<'_>,
    aid: ArrayId,
    addr: CellId,
    data: CellId,
    extra_stages: u32,
    name: &str,
    art: &mut LoopArtifacts,
) {
    let banks = ctx.array_banks[aid.index()].clone();
    distribution_tree(ctx, data, &banks, extra_stages, &format!("{name}_d"), art);
    distribution_tree(ctx, addr, &banks, extra_stages, &format!("{name}_a"), art);
}

/// Lowers a load: address broadcast plus a collection mux tree over the
/// banks' read data. Returns the cell producing the loaded value.
pub(crate) fn lower_load(
    ctx: &mut Ctx<'_>,
    aid: ArrayId,
    addr: CellId,
    extra_stages: u32,
    name: &str,
    art: &mut LoopArtifacts,
) -> CellId {
    let banks = ctx.array_banks[aid.index()].clone();
    distribution_tree(ctx, addr, &banks, extra_stages, &format!("{name}_a"), art);
    ctx.info.max_memory_fanout = ctx.info.max_memory_fanout.max(banks.len());

    // Collection tree: groups of MUX_FANIN banks per mux cell; registered
    // per level when extra stages were planned.
    let width = ctx.nl.cell(banks[0]).width;
    let registered = extra_stages >= 1;
    let mut level = banks;
    let mut lvl_idx = 0usize;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(MUX_FANIN));
        for (gi, grp) in level.chunks(MUX_FANIN).enumerate() {
            let mux = ctx.nl.add_cell(Cell::comb(
                format!("{name}_mux{lvl_idx}_{gi}"),
                width,
                0.35,
                width,
            ));
            for &g in grp {
                ctx.nl.connect(g, &[mux]);
            }
            if registered {
                let ff = ctx
                    .nl
                    .add_cell(Cell::ff(format!("{name}_muxq{lvl_idx}_{gi}"), width));
                ctx.nl.connect(mux, &[ff]);
                art.loop_ffs.push(ff);
                next.push(ff);
            } else {
                next.push(mux);
            }
        }
        level = next;
        lvl_idx += 1;
    }
    level[0]
}
