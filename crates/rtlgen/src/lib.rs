//! # hlsb-rtlgen — RTL (netlist) generation from scheduled IR
//!
//! The "RTL generation phase creates the control logic to orchestrate the
//! datapath" (paper §2). This crate lowers a scheduled design to a
//! [`hlsb_netlist::Netlist`], reproducing the control templates whose
//! broadcast structure the paper analyses:
//!
//! * **datapath** — one word-level cell per operation, pipeline registers
//!   for values crossing cycle boundaries, flattened PE instantiation for
//!   `call`s;
//! * **memory** — one BRAM bank-cell group per array with the write-data /
//!   address broadcast nets of Fig. 4, optionally pipelined through
//!   distribution/collection register trees when broadcast-aware
//!   scheduling planned extra stages;
//! * **pipeline control** — either the conventional *stall broadcast*
//!   (FIFO status → one net fanning out to every register of the loop,
//!   Fig. 8) or *skid-buffer control* (per-stage valid bits, buffers at
//!   DP-chosen cut points, a tiny front gate — Fig. 11/12);
//! * **synchronization** — done-reduce / start-broadcast for parallel PE
//!   calls (Fig. 6b), optionally pruned to the longest-latency module.
//!
//! The returned [`LoweredDesign`] carries the netlist plus structural
//! metadata (stage widths, buffer bits, control fanouts) used by the
//! benchmark harness.

pub mod control;
pub mod datapath;
pub mod info;
pub mod lower;
pub mod memory;
pub mod options;

pub use control::GATE_PIPELINE;
pub use info::{stage_widths, LowerInfo, SkidDecision, SkidStorage, SyncDecision};
pub use lower::{
    lower_design, LoweredDesign, OwnedScheduledDesign, ScheduledDesign, ScheduledLoop,
};
pub use options::{ControlStyle, RtlOptions};

#[cfg(test)]
mod tests;
