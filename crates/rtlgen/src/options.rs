//! Lowering options.

/// Pipeline flow-control style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ControlStyle {
    /// Conventional HLS control: broadcast the FIFO-status stall/enable to
    /// every register of the pipeline (paper §3.3).
    #[default]
    Stall,
    /// Skid-buffer-based control (§4.3): always-flowing pipeline with
    /// valid bits and a bounded bypass buffer.
    Skid {
        /// Place buffers at DP-optimized cut points (Fig. 12) instead of a
        /// single buffer at the end of the pipeline.
        min_area: bool,
    },
}

impl ControlStyle {
    /// Whether this is a skid-buffer style.
    pub fn is_skid(self) -> bool {
        matches!(self, ControlStyle::Skid { .. })
    }
}

/// Options controlling RTL generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RtlOptions {
    /// Flow-control style for pipelined loops.
    pub control: ControlStyle,
    /// Prune parallel-module synchronization to the longest static latency
    /// (§4.2 case 2).
    pub sync_pruning: bool,
    /// Extra registered hops on inter-kernel channels, provisioned in the
    /// flow-control logic. Island-partitioned placement registers every
    /// net that crosses an island boundary, which adds one cycle of
    /// latency per crossing; skid buffers must grow by the same number of
    /// slots to keep the no-overflow contract (VC02). Zero for flat
    /// placement.
    pub crossing_slots: u64,
}

impl RtlOptions {
    /// The paper's baseline: stall control, full synchronization.
    pub fn baseline() -> Self {
        RtlOptions {
            control: ControlStyle::Stall,
            sync_pruning: false,
            crossing_slots: 0,
        }
    }

    /// All control optimizations on.
    pub fn optimized() -> Self {
        RtlOptions {
            control: ControlStyle::Skid { min_area: true },
            sync_pruning: true,
            crossing_slots: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_baseline() {
        assert_eq!(RtlOptions::default().control, ControlStyle::Stall);
        assert!(!RtlOptions::default().sync_pruning);
        assert_eq!(RtlOptions::baseline(), RtlOptions::default());
    }

    #[test]
    fn optimized_enables_everything() {
        let o = RtlOptions::optimized();
        assert!(o.control.is_skid());
        assert!(o.sync_pruning);
    }
}
