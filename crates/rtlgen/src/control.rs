//! Control-logic generation: stall broadcast, skid-buffer control, and
//! parallel-module synchronization.

use crate::datapath::LoopArtifacts;
use crate::lower::{Ctx, ScheduledLoop};
use crate::options::ControlStyle;
use hlsb_ctrl::min_area_split;
use hlsb_netlist::{Cell, CellId};
use hlsb_sync::prune::{prune_sync, ModuleSync};

/// Fan-in per level of status/done reduce trees.
const REDUCE_FANIN: usize = 6;

/// Cycles of feedback latency in the registered skid front gate (the two
/// `gate_p1`/`gate_p2` registers of Fig. 11's control path). Every skid
/// buffer carries this many extra slots of in-flight slack on top of the
/// paper's `N + 1` bound, and the cycle-accurate simulator
/// (`hlsb-sim`) budgets its credit gate with the same constant.
pub const GATE_PIPELINE: u64 = 2;

/// Builds a combinational reduce tree over 1-bit drivers, returning the
/// root cell. Single drivers are returned as-is.
pub(crate) fn reduce_tree(ctx: &mut Ctx<'_>, drivers: &[CellId], name: &str) -> CellId {
    assert!(!drivers.is_empty(), "reduce tree needs inputs");
    let mut level: Vec<CellId> = drivers.to_vec();
    let mut lvl = 0usize;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(REDUCE_FANIN));
        for (gi, grp) in level.chunks(REDUCE_FANIN).enumerate() {
            let and = ctx
                .nl
                .add_cell(Cell::comb(format!("{name}_red{lvl}_{gi}"), 1, 0.25, 1));
            for &g in grp {
                ctx.nl.connect(g, &[and]);
            }
            next.push(and);
        }
        level = next;
        lvl += 1;
    }
    level[0]
}

/// A 1-bit status register fed by `src` (e.g. a FIFO occupancy flag).
fn status_ff(ctx: &mut Ctx<'_>, src: CellId, name: String) -> CellId {
    let ff = ctx.nl.add_cell(Cell::ff(name, 1));
    ctx.nl.connect(src, &[ff]);
    ff
}

/// Attaches pipeline flow control to a lowered loop. `name` is the
/// lowered loop instance name, used for decision provenance.
pub(crate) fn attach_pipeline_control(
    ctx: &mut Ctx<'_>,
    sl: &ScheduledLoop,
    art: &LoopArtifacts,
    name: &str,
) {
    if !sl.looop.is_pipelined() {
        return;
    }
    match ctx.options.control {
        ControlStyle::Stall => attach_stall(ctx, art),
        ControlStyle::Skid { min_area } => attach_skid(ctx, sl, art, min_area, name),
    }
}

/// Conventional control (Fig. 8): the FIFO empty/full statuses reduce into
/// one stall signal that fans out to **every** register of the loop — and,
/// for memory loops, to every BRAM bank (Fig. 18's enable broadcast).
fn attach_stall(ctx: &mut Ctx<'_>, art: &LoopArtifacts) {
    // Status sources: one register per FIFO endpoint used by the loop.
    let mut statuses = Vec::new();
    for (i, &fid) in art.fifos.iter().enumerate() {
        let cell = ctx.fifo_cell(fid);
        statuses.push(status_ff(ctx, cell, format!("stall_status{i}")));
    }
    if statuses.is_empty() {
        // Loops without FIFOs still carry an FSM-generated enable.
        statuses.push(ctx.nl.add_cell(Cell::ff("stall_fsm", 1)));
    }
    let root = reduce_tree(ctx, &statuses, "stall");

    // The broadcast: every pipeline register plus the banks of every
    // accessed array listen to the (combinational!) stall signal.
    let mut sinks: Vec<CellId> = art.loop_ffs.clone();
    for &aid in &art.arrays {
        sinks.extend(ctx.array_banks[aid.index()].iter().copied());
    }
    for &fid in &art.fifos {
        sinks.push(ctx.fifo_cell(fid));
    }
    if sinks.is_empty() {
        return;
    }
    ctx.nl.connect(root, &sinks);
    ctx.info.max_control_fanout = ctx.info.max_control_fanout.max(sinks.len());
}

/// Skid-buffer control (Fig. 11/12): per-stage valid bits (fanout 1), skid
/// buffers at the DP-chosen cut points, and a small gate on the first
/// stage only. The datapath registers are free-running — no enable net.
fn attach_skid(
    ctx: &mut Ctx<'_>,
    sl: &ScheduledLoop,
    art: &LoopArtifacts,
    min_area: bool,
    name: &str,
) {
    let depth = sl.schedule.depth as usize;

    // Valid-bit chain.
    let mut valid = Vec::with_capacity(depth);
    let mut prev: Option<CellId> = None;
    for s in 0..depth {
        let v = ctx.nl.add_cell(Cell::ff(format!("valid{s}"), 1));
        if let Some(p) = prev {
            ctx.nl.connect(p, &[v]);
        }
        prev = Some(v);
        valid.push(v);
    }

    // Buffer cut points.
    let widths = &art.stage_widths;
    let cuts: Vec<usize> = if min_area {
        min_area_split(widths).cuts
    } else if depth > 0 {
        vec![depth]
    } else {
        vec![]
    };

    // The gate feedback is registered (see below), which costs
    // GATE_PIPELINE extra cycles of in-flight slack per buffer. Island-
    // partitioned placement registers inter-island channels, adding
    // `crossing_slots` more cycles the buffer must absorb.
    let crossing_slots = ctx.options.crossing_slots;
    let mut status_ffs = Vec::new();
    let mut prev_cut = 0usize;
    for (ci, &cut) in cuts.iter().enumerate() {
        let seg_len = cut - prev_cut;
        let width = widths[cut - 1];
        let depth_slots = seg_len as u64 + 1 + GATE_PIPELINE + crossing_slots;
        let bits = depth_slots * width;
        ctx.info.skid_buffer_bits += bits;
        ctx.info.skid_decisions.push(crate::info::SkidDecision {
            looop: name.to_string(),
            cut_stage: cut,
            depth_slots,
            crossing_slots,
            width_bits: width,
            bits,
            storage: if bits >= 4096 {
                crate::info::SkidStorage::Bram
            } else {
                crate::info::SkidStorage::Ff
            },
            min_area,
        });
        let buf = if bits >= 4096 {
            let mut c = Cell::bram(format!("skid{ci}"), width.min(1 << 16) as u32, 0);
            c.brams = bits.div_ceil(36_864) as u32;
            ctx.nl.add_cell(c)
        } else {
            let mut c = Cell::ff(format!("skid{ci}"), width.min(1 << 16) as u32);
            c.ffs = bits.min(u64::from(u32::MAX)) as u32;
            ctx.nl.add_cell(c)
        };
        // The valid bit at the cut feeds the buffer (write side); the
        // buffer's occupancy flag is registered for the gate.
        if let Some(&v) = valid.get(cut.saturating_sub(1)) {
            ctx.nl.connect(v, &[buf]);
        }
        status_ffs.push(status_ff(ctx, buf, format!("skid{ci}_status")));
        prev_cut = cut;
    }

    // Front gate: tiny fanout — the entry registers and the first valid
    // bit only. Unlike the stall broadcast, the gate feedback tolerates
    // latency (the buffers carry GATE_PIPELINE cycles of extra slack), so
    // it is *registered* twice on its way to the front — a pipelineable,
    // duplicable net instead of a single-cycle combinational broadcast.
    if !status_ffs.is_empty() {
        let gate = reduce_tree(ctx, &status_ffs, "gate");
        let g1 = ctx.nl.add_cell(Cell::ff("gate_p1", 1));
        ctx.nl.connect(gate, &[g1]);
        let g2 = ctx.nl.add_cell(Cell::ff("gate_p2", 1));
        ctx.nl.connect(g1, &[g2]);
        let mut sinks: Vec<CellId> = art.entry_ffs.clone();
        if let Some(&v0) = valid.first() {
            sinks.push(v0);
        }
        if !sinks.is_empty() {
            ctx.nl.connect(g2, &sinks);
            ctx.info.max_control_fanout = ctx.info.max_control_fanout.max(sinks.len());
        }
    }
}

/// Synchronization of parallel PE calls (Fig. 6b): each PE raises `done`;
/// the controller AND-reduces the waited set and broadcasts `start` to
/// every PE's input registers. With pruning, only the longest static
/// latency is waited on (§4.2).
pub(crate) fn attach_call_sync(ctx: &mut Ctx<'_>, art: &LoopArtifacts, name: &str) {
    if art.calls.len() < 2 {
        return;
    }
    ctx.info.sync_inputs += art.calls.len();

    let modules: Vec<ModuleSync> = art
        .calls
        .iter()
        .enumerate()
        .map(|(i, c)| ModuleSync {
            name: format!("pe{i}"),
            latency: c.static_latency,
        })
        .collect();
    let plan = if ctx.options.sync_pruning {
        prune_sync(&modules)
    } else {
        hlsb_sync::SyncPlan {
            wait: (0..modules.len()).collect(),
            pruned: vec![],
        }
    };
    ctx.info.sync_waited += plan.wait.len();

    // Per-module prune/keep provenance: every pruned module is covered by
    // the largest static latency in the waited set.
    let cover_latency = plan.wait.iter().filter_map(|&i| modules[i].latency).max();
    for (i, m) in modules.iter().enumerate() {
        ctx.info.sync_decisions.push(crate::info::SyncDecision {
            looop: name.to_string(),
            module: m.name.clone(),
            latency: m.latency,
            waited: plan.wait.contains(&i),
            cover_latency,
        });
    }

    // Done registers for the waited PEs.
    let dones: Vec<CellId> = plan
        .wait
        .iter()
        .map(|&i| {
            let result = art.calls[i].result;
            status_ff(ctx, result, format!("pe{i}_done"))
        })
        .collect();
    let all_done = reduce_tree(ctx, &dones, "sync");

    // Start broadcast to every PE's entry registers. The reduce root is
    // combinational: it cannot be register-duplicated by physical
    // optimization — the paper's point about why pruning must happen at
    // the behaviour level.
    let sinks: Vec<CellId> = art
        .calls
        .iter()
        .flat_map(|c| c.entry_ffs.iter().copied())
        .collect();
    if !sinks.is_empty() {
        ctx.nl.connect(all_done, &sinks);
        ctx.info.max_control_fanout = ctx.info.max_control_fanout.max(sinks.len());
    }
}
