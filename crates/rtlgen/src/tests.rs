//! End-to-end lowering tests.

use crate::lower::{lower_design, OwnedScheduledDesign, ScheduledLoop};
use crate::options::{ControlStyle, RtlOptions};
use hlsb_delay::HlsPredictedModel;
use hlsb_ir::builder::DesignBuilder;
use hlsb_ir::unroll::unroll_loop;
use hlsb_ir::{DataType, Design, Partition};
use hlsb_netlist::CellKind;
use hlsb_sched::{schedule_loop, MemAccessPlan};

const CLOCK: f64 = 3.33;

/// Schedules every loop of a design (applying unroll pragmas) with the
/// predicted model.
fn schedule_all(design: &Design) -> OwnedScheduledDesign {
    let model = HlsPredictedModel::new();
    let loops = design
        .kernels
        .iter()
        .map(|k| {
            k.loops
                .iter()
                .map(|lp| {
                    let u = unroll_loop(lp);
                    let schedule = schedule_loop(&u.looop, design, &model, CLOCK);
                    ScheduledLoop {
                        looop: u.looop,
                        schedule,
                        mem_plan: MemAccessPlan::default(),
                    }
                })
                .collect()
        })
        .collect();
    OwnedScheduledDesign {
        design: design.clone(),
        loops,
    }
}

/// A streaming loop: fifo -> compute -> fifo.
fn stream_design(depth_ops: usize) -> Design {
    let mut b = DesignBuilder::new("stream");
    let fin = b.fifo("in", DataType::Int(32), 2);
    let fout = b.fifo("out", DataType::Int(32), 2);
    let mut k = b.kernel("top");
    let mut l = k.pipelined_loop("main", 1024, 1);
    let mut v = l.fifo_read(fin, DataType::Int(32));
    let c = l.constant("c1", DataType::Int(32));
    for _ in 0..depth_ops {
        let s = l.add(v, c);
        v = l.reg(s); // force one op per stage
    }
    l.fifo_write(fout, v);
    l.finish();
    k.finish();
    b.finish().expect("valid")
}

#[test]
fn stall_broadcast_fans_out_to_all_registers() {
    let d = stream_design(12);
    let sd = schedule_all(&d);
    let lowered = lower_design(
        &sd.view(),
        &RtlOptions::baseline(),
        &HlsPredictedModel::new(),
    );
    lowered.netlist.validate().expect("valid netlist");
    // Every pipeline register hangs off one stall net.
    assert!(
        lowered.info.max_control_fanout >= 12,
        "stall fanout {}",
        lowered.info.max_control_fanout
    );
    assert_eq!(lowered.info.skid_buffer_bits, 0);
}

#[test]
fn skid_control_has_small_fanout_and_buffers() {
    let d = stream_design(12);
    let sd = schedule_all(&d);
    let stall = lower_design(
        &sd.view(),
        &RtlOptions::baseline(),
        &HlsPredictedModel::new(),
    );
    let skid = lower_design(
        &sd.view(),
        &RtlOptions::optimized(),
        &HlsPredictedModel::new(),
    );
    skid.netlist.validate().expect("valid netlist");
    assert!(
        skid.info.max_control_fanout * 3 < stall.info.max_control_fanout,
        "skid {} vs stall {}",
        skid.info.max_control_fanout,
        stall.info.max_control_fanout
    );
    assert!(skid.info.skid_buffer_bits > 0);
}

#[test]
fn min_area_skid_never_uses_more_bits() {
    let d = stream_design(20);
    let sd = schedule_all(&d);
    let plain = lower_design(
        &sd.view(),
        &RtlOptions {
            control: ControlStyle::Skid { min_area: false },
            sync_pruning: false,
            crossing_slots: 0,
        },
        &HlsPredictedModel::new(),
    );
    let min = lower_design(
        &sd.view(),
        &RtlOptions {
            control: ControlStyle::Skid { min_area: true },
            sync_pruning: false,
            crossing_slots: 0,
        },
        &HlsPredictedModel::new(),
    );
    assert!(min.info.skid_buffer_bits <= plain.info.skid_buffer_bits);
}

#[test]
fn large_array_store_creates_memory_broadcast() {
    let mut b = DesignBuilder::new("bigbuf");
    let arr = b.array("buffer", DataType::Int(32), 737_280, Partition::None);
    let fin = b.fifo("in", DataType::Int(32), 2);
    let mut k = b.kernel("top");
    let mut l = k.pipelined_loop("fill", 737_280, 1);
    let i = l.indvar("i");
    let v = l.fifo_read(fin, DataType::Int(32));
    l.store(arr, i, v);
    l.finish();
    k.finish();
    let d = b.finish().expect("valid");
    let sd = schedule_all(&d);
    let lowered = lower_design(
        &sd.view(),
        &RtlOptions::baseline(),
        &HlsPredictedModel::new(),
    );
    lowered.netlist.validate().expect("valid");
    // 640 units grouped into bank cells; the store data net hits them all.
    assert!(
        lowered.info.max_memory_fanout >= 100,
        "memory fanout {}",
        lowered.info.max_memory_fanout
    );
    // BRAM resources accounted.
    assert!(lowered.netlist.stats().brams >= 640);
}

#[test]
fn mem_plan_stages_shrink_memory_fanout() {
    let mut b = DesignBuilder::new("bigbuf2");
    let arr = b.array("buffer", DataType::Int(32), 737_280, Partition::None);
    let fin = b.fifo("in", DataType::Int(32), 2);
    let mut k = b.kernel("top");
    let mut l = k.pipelined_loop("fill", 737_280, 1);
    let i = l.indvar("i");
    let v = l.fifo_read(fin, DataType::Int(32));
    let st = l.store(arr, i, v);
    l.finish();
    k.finish();
    let d = b.finish().expect("valid");
    let mut sd = schedule_all(&d);
    // Plan one extra distribution stage on the store.
    sd.loops[0][0].mem_plan.extra_stages.insert(st, 1);
    let lowered = lower_design(
        &sd.view(),
        &RtlOptions::baseline(),
        &HlsPredictedModel::new(),
    );
    lowered.netlist.validate().expect("valid");
    let direct = {
        let sd2 = schedule_all(&d);
        lower_design(
            &sd2.view(),
            &RtlOptions::baseline(),
            &HlsPredictedModel::new(),
        )
    };
    assert!(
        lowered.info.max_memory_fanout < direct.info.max_memory_fanout,
        "{} vs {}",
        lowered.info.max_memory_fanout,
        direct.info.max_memory_fanout
    );
}

/// Fig. 5b: parallel PE calls with static latencies.
fn parallel_pe_design(pes: usize) -> Design {
    let mut b = DesignBuilder::new("pes");
    let mut pe_ids = vec![];
    for p in 0..pes {
        let mut pe = b.kernel(format!("pe{p}"));
        pe.set_static_latency(4 + p as u64);
        let mut l = pe.pipelined_loop("body", 16, 1);
        let x = l.varying_input("x", DataType::Int(32));
        let c = l.constant("k", DataType::Int(32));
        let m = l.mul(x, c);
        l.output("y", m);
        l.finish();
        pe_ids.push(pe.finish());
    }
    let mut top = b.kernel("top");
    let mut l = top.sequential_loop("main", 64);
    let a = l.varying_input("a", DataType::Int(32));
    let mut outs = vec![];
    for &pid in &pe_ids {
        outs.push(l.call(pid, vec![a], DataType::Int(32)));
    }
    let mut acc = outs[0];
    for &o in &outs[1..] {
        acc = l.add(acc, o);
    }
    l.output("sum", acc);
    l.finish();
    top.finish();
    b.finish().expect("valid")
}

#[test]
fn call_sync_reduce_is_generated_and_pruned() {
    let d = parallel_pe_design(8);
    let sd = schedule_all(&d);
    let full = lower_design(
        &sd.view(),
        &RtlOptions::baseline(),
        &HlsPredictedModel::new(),
    );
    full.netlist.validate().expect("valid");
    assert_eq!(full.info.sync_inputs, 8);
    assert_eq!(full.info.sync_waited, 8);

    let pruned = lower_design(
        &sd.view(),
        &RtlOptions {
            control: ControlStyle::Stall,
            sync_pruning: true,
            crossing_slots: 0,
        },
        &HlsPredictedModel::new(),
    );
    assert_eq!(pruned.info.sync_inputs, 8);
    assert_eq!(pruned.info.sync_waited, 1, "only the slowest PE is waited");
}

#[test]
fn called_kernels_are_inlined_not_duplicated() {
    let d = parallel_pe_design(4);
    let sd = schedule_all(&d);
    let lowered = lower_design(
        &sd.view(),
        &RtlOptions::baseline(),
        &HlsPredictedModel::new(),
    );
    // 4 PEs, each with one multiplier: exactly 4 DSP-bearing cells.
    let dsp_cells = lowered
        .netlist
        .cells()
        .filter(|(_, c)| c.kind == CellKind::Dsp)
        .count();
    assert_eq!(dsp_cells, 4);
}

#[test]
fn lowered_netlists_have_no_comb_cycles() {
    for d in [stream_design(5), parallel_pe_design(3)] {
        let sd = schedule_all(&d);
        for opt in [RtlOptions::baseline(), RtlOptions::optimized()] {
            let lowered = lower_design(&sd.view(), &opt, &HlsPredictedModel::new());
            lowered.netlist.validate().expect("valid");
            assert!(lowered.netlist.comb_topo_order().is_some());
        }
    }
}

#[test]
fn unrolled_broadcast_appears_in_netlist() {
    let mut b = DesignBuilder::new("unrolled");
    let fin = b.fifo("in", DataType::Int(32), 2);
    let fout = b.fifo("out", DataType::Int(32), 2);
    let mut k = b.kernel("top");
    let mut l = k.pipelined_loop("body", 1024, 1);
    l.set_unroll(64);
    let src = l.invariant_input("source", DataType::Int(32));
    let x = l.fifo_read(fin, DataType::Int(32));
    let s = l.sub(x, src);
    l.fifo_write(fout, s);
    l.finish();
    k.finish();
    let d = b.finish().expect("valid");
    let sd = schedule_all(&d);
    let lowered = lower_design(
        &sd.view(),
        &RtlOptions::baseline(),
        &HlsPredictedModel::new(),
    );
    // The invariant source register drives a 64-way data broadcast net.
    let max_data_fanout = lowered
        .netlist
        .nets()
        .filter(|(_, n)| lowered.netlist.cell(n.driver).kind == CellKind::Ff)
        .map(|(_, n)| n.fanout())
        .max()
        .unwrap_or(0);
    assert!(max_data_fanout >= 64, "broadcast fanout {max_data_fanout}");
}

mod properties {
    use super::*;
    use hlsb_ir::{CmpPred, DesignBuilder};
    use hlsb_rng::Rng;

    /// A random straight-line streaming program.
    fn random_design(ops: &[u16]) -> Design {
        let mut b = DesignBuilder::new("prop");
        let fin = b.fifo("in", DataType::Int(32), 2);
        let fout = b.fifo("out", DataType::Int(32), 2);
        let arr = b.array("scratch", DataType::Int(32), 512, Partition::None);
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("main", 32, 1);
        let inv = l.invariant_input("inv", DataType::Int(32));
        let i = l.indvar("i");
        let x = l.fifo_read(fin, DataType::Int(32));
        let mut vals = vec![inv, i, x];
        for &op in ops {
            let a = vals[(op as usize / 13) % vals.len()];
            let c = vals[(op as usize / 3) % vals.len()];
            let v = match op % 9 {
                0 => l.add(a, c),
                1 => l.sub(a, c),
                2 => l.mul(a, c),
                3 => l.min(a, c),
                4 => l.reg(a),
                5 => {
                    let cond = l.cmp(CmpPred::Gt, a, c);
                    l.select(cond, a, c)
                }
                6 => l.load(arr, i, DataType::Int(32)),
                7 => {
                    l.store(arr, i, a);
                    a
                }
                _ => l.xor(a, c),
            };
            vals.push(v);
        }
        let last = *vals.last().expect("nonempty");
        l.fifo_write(fout, last);
        l.finish();
        k.finish();
        b.finish().expect("valid")
    }

    #[test]
    fn random_programs_lower_to_valid_netlists() {
        let mut rng = Rng::seed_from_u64(0x271_0001);
        for _ in 0..32 {
            let len = rng.gen_index(29) + 1;
            let ops: Vec<u16> = (0..len).map(|_| rng.gen_u64(0, 4999) as u16).collect();
            let skid = rng.gen_bool(0.5);
            let d = random_design(&ops);
            let sd = schedule_all(&d);
            let options = if skid {
                RtlOptions::optimized()
            } else {
                RtlOptions::baseline()
            };
            let lowered = lower_design(&sd.view(), &options, &HlsPredictedModel::new());
            assert!(lowered.netlist.validate().is_ok(), "ops {ops:?}");
            assert!(lowered.netlist.comb_topo_order().is_some(), "ops {ops:?}");
            // Resources are nonzero and sane.
            let stats = lowered.netlist.stats();
            assert!(stats.ffs > 0);
        }
    }
}
