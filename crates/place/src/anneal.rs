//! Levelized seed placement + simulated-annealing refinement.
//!
//! Both entry points funnel into one region-parameterized core:
//! [`place_with`] anneals over the full device grid (the classic flat
//! flow), while [`place_in_region`] confines seeding, annealing moves and
//! the zero-temperature polish to a reserved [`Region`] — the per-island
//! mode of partitioned placement (`crate::partition`). The flat path is
//! the full-grid special case of the region path, so flat results are
//! bit-identical to what the pre-partitioning placer produced.

use crate::placement::{Placement, Region};
use crate::sites::{site_legal, snap_column_in};
use hlsb_fabric::Device;
use hlsb_netlist::{CellId, CellKind, Netlist};
use hlsb_rng::Rng;
use std::collections::HashMap;

/// Annealing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealConfig {
    /// Moves per cell (total moves = `moves_per_cell * cell_count`,
    /// clamped to `[min_moves, max_moves]`).
    pub moves_per_cell: u32,
    /// Lower bound on total moves.
    pub min_moves: u32,
    /// Upper bound on total moves.
    pub max_moves: u32,
    /// Geometric cooling factor applied every batch.
    pub cooling: f64,
    /// Number of cooling batches.
    pub batches: u32,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            moves_per_cell: 130,
            min_moves: 8_000,
            max_moves: 2_500_000,
            cooling: 0.90,
            batches: 70,
        }
    }
}

/// Places a netlist on a device with the default annealing configuration.
///
/// # Panics
///
/// Panics if the netlist has more cells than the device has sites of the
/// required kinds.
pub fn place(netlist: &Netlist, device: &Device, seed: u64) -> Placement {
    place_with(netlist, device, seed, AnnealConfig::default())
}

/// Places a netlist with an explicit configuration.
///
/// # Panics
///
/// Panics if the netlist does not fit on the device grid.
pub fn place_with(
    netlist: &Netlist,
    device: &Device,
    seed: u64,
    config: AnnealConfig,
) -> Placement {
    let n = netlist.cell_count();
    if n == 0 {
        return Placement::from_locs(Vec::new(), device.grid_w, device.grid_h);
    }
    assert!(
        (n as u64) < u64::from(device.grid_w) * u64::from(device.grid_h) / 2,
        "netlist ({n} cells) does not fit on {}",
        device.name
    );
    place_impl(netlist, device, Region::full(device), seed, config)
}

/// Places a netlist inside a reserved region of the device (absolute
/// coordinates): the seed, every annealing move and the polish stay in
/// `region`, so disjoint regions can be placed concurrently without a
/// shared occupancy map. Pure function of `(netlist, region, seed,
/// config)` — island placements are identical no matter which thread
/// runs them, or in what order.
///
/// # Panics
///
/// Panics if the netlist does not fit in the region (the same one-cell-
/// per-two-sites margin the flat placer requires of the whole device),
/// or if the region leaves the device grid.
pub fn place_in_region(
    netlist: &Netlist,
    device: &Device,
    region: Region,
    seed: u64,
    config: AnnealConfig,
) -> Placement {
    let n = netlist.cell_count();
    if n == 0 {
        return Placement::from_locs(Vec::new(), device.grid_w, device.grid_h);
    }
    assert!(
        u32::from(region.x1()) <= device.grid_w && u32::from(region.y1()) <= device.grid_h,
        "region {region:?} leaves the {} grid",
        device.name
    );
    assert!(
        (n as u64) < region.sites() / 2,
        "island ({n} cells) does not fit in region {region:?}"
    );
    place_impl(netlist, device, region, seed, config)
}

fn place_impl(
    netlist: &Netlist,
    device: &Device,
    bounds: Region,
    seed: u64,
    config: AnnealConfig,
) -> Placement {
    let n = netlist.cell_count();
    // Confine small designs to a proportionate region: spreading a tiny
    // netlist across the whole die (or island across the whole strip)
    // would fabricate wire delay out of thin air. Real placers pack
    // designs into a fraction of the fabric too.
    let side = ((3 * n) as f64).sqrt().ceil() as u16 + 4;
    let rw = side.max(8).min(bounds.w);
    let rh = side.max(8).min(bounds.h);

    let mut occupied: HashMap<(u16, u16), CellId> = HashMap::with_capacity(n * 2);
    let mut placement = seed_placement(netlist, device, bounds, rw, rh, &mut occupied);
    anneal(
        netlist,
        &mut placement,
        &mut occupied,
        bounds,
        rw.max(rh),
        seed,
        config,
    );
    placement
}

/// Dataflow levels by construction order: `level(c) = max(level(d) + 1)`
/// over drivers `d` with a smaller id (RTL generation emits cells in
/// pipeline order, so this approximates the logical left-to-right flow and
/// is well-defined even with sequential feedback).
fn levels(netlist: &Netlist) -> Vec<u32> {
    let mut level = vec![0u32; netlist.cell_count()];
    for (id, _) in netlist.cells() {
        let mut best = 0;
        for &net in netlist.input_nets(id) {
            let d = netlist.net(net).driver;
            if d.index() < id.index() {
                best = best.max(level[d.index()] + 1);
            }
        }
        level[id.index()] = best;
    }
    level
}

fn seed_placement(
    netlist: &Netlist,
    device: &Device,
    bounds: Region,
    rw: u16,
    rh: u16,
    occupied: &mut HashMap<(u16, u16), CellId>,
) -> Placement {
    let level = levels(netlist);
    let max_level = level.iter().copied().max().unwrap_or(0).max(1);
    let n = netlist.cell_count();

    // Bucket cells by target column within the seed window `[bounds.x0,
    // bounds.x0 + rw) x [bounds.y0, bounds.y0 + rh)`.
    let mut by_col: HashMap<u16, Vec<CellId>> = HashMap::new();
    for (id, cell) in netlist.cells() {
        let frac = level[id.index()] as f64 / max_level as f64;
        let x = bounds.x0 + (frac * f64::from(rw - 1)).round() as u16;
        let x = snap_column_in(cell.kind, x, bounds.x0, bounds.x1());
        by_col.entry(x).or_default().push(id);
    }

    let mut locs = vec![(0u16, 0u16); n];
    let mut cols: Vec<u16> = by_col.keys().copied().collect();
    cols.sort_unstable();
    for x in cols {
        let cells = &by_col[&x];
        let count = cells.len() as f64;
        for (i, &c) in cells.iter().enumerate() {
            let y = bounds.y0 + (((i as f64 + 0.5) / count) * f64::from(rh)) as u16;
            let want = (x, y.min(bounds.y1() - 1));
            let loc = free_site_near(netlist.cell(c).kind, want, bounds, occupied);
            occupied.insert(loc, c);
            locs[c.index()] = loc;
        }
    }
    Placement::from_locs(locs, device.grid_w, device.grid_h)
}

/// Finds the nearest free legal site to `want` within `bounds` (spiral
/// probe).
fn free_site_near(
    kind: CellKind,
    want: (u16, u16),
    bounds: Region,
    occupied: &HashMap<(u16, u16), CellId>,
) -> (u16, u16) {
    let (wx, wy) = want;
    for radius in 0..bounds.w.max(bounds.h) {
        let r = i32::from(radius);
        for dy in -r..=r {
            for dx in -r..=r {
                if dx.abs().max(dy.abs()) != r {
                    continue; // ring only
                }
                let x = i32::from(wx) + dx;
                let y = i32::from(wy) + dy;
                if x < i32::from(bounds.x0)
                    || y < i32::from(bounds.y0)
                    || x >= i32::from(bounds.x1())
                    || y >= i32::from(bounds.y1())
                {
                    continue;
                }
                let loc = (x as u16, y as u16);
                if site_legal(kind, loc.0) && !occupied.contains_key(&loc) {
                    return loc;
                }
            }
        }
    }
    panic!("no free site for cell kind {kind:?} in {bounds:?}");
}

/// Cost of the wiring adjacent to a cell, as *star* wirelength: the sum of
/// driver-to-sink distances of every arc touching the cell. Unlike HPWL,
/// this gives every sink of a high-fanout net a gradient toward its driver,
/// so broadcast clouds compact into the dense `sqrt(fanout)` disc that site
/// exclusivity permits — the physical effect under study.
fn adjacent_cost(netlist: &Netlist, placement: &Placement, cell: CellId) -> f64 {
    let mut cost = 0.0;
    if let Some(net) = netlist.output_net(cell) {
        for &s in &netlist.net(net).sinks {
            cost += placement.dist(cell, s);
        }
    }
    for &net in netlist.input_nets(cell) {
        cost += placement.dist(netlist.net(net).driver, cell);
    }
    cost
}

fn anneal(
    netlist: &Netlist,
    placement: &mut Placement,
    occupied: &mut HashMap<(u16, u16), CellId>,
    bounds: Region,
    region: u16,
    seed: u64,
    config: AnnealConfig,
) {
    let n = netlist.cell_count();
    if n < 2 {
        return;
    }
    let mut rng = Rng::seed_from_u64(seed);
    let total_moves = (config.moves_per_cell as usize * n)
        .clamp(config.min_moves as usize, config.max_moves as usize);
    let moves_per_batch = (total_moves / config.batches.max(1) as usize).max(1);

    // Initial temperature: on the scale of a typical per-move cost delta
    // (a few grid units), NOT of the region: the levelized seed is already
    // structured and a hot start would randomize it.
    let mut temp = 2.0;
    let mut window = (f64::from(region) * 0.3).max(6.0);

    for _ in 0..config.batches {
        for _ in 0..moves_per_batch {
            let a = CellId(rng.gen_index(n) as u32);
            let kind_a = netlist.cell(a).kind;
            let (ax, ay) = placement.loc(a);
            let w = i64::from(window.max(2.0) as i32);
            let tx = (i64::from(ax) + rng.gen_i64(-w, w))
                .clamp(i64::from(bounds.x0), i64::from(bounds.x1()) - 1)
                as u16;
            let ty = (i64::from(ay) + rng.gen_i64(-w, w))
                .clamp(i64::from(bounds.y0), i64::from(bounds.y1()) - 1)
                as u16;
            let target = (snap_column_in(kind_a, tx, bounds.x0, bounds.x1()), ty);
            if target == (ax, ay) || !site_legal(kind_a, target.0) {
                continue;
            }

            let other = occupied.get(&target).copied();
            if let Some(b) = other {
                // Swap legality: b must be allowed at a's site.
                if !site_legal(netlist.cell(b).kind, ax) {
                    continue;
                }
                let before =
                    adjacent_cost(netlist, placement, a) + adjacent_cost(netlist, placement, b);
                placement.set_loc(a, target);
                placement.set_loc(b, (ax, ay));
                let after =
                    adjacent_cost(netlist, placement, a) + adjacent_cost(netlist, placement, b);
                let delta = after - before;
                if delta <= 0.0 || rng.gen_f64() < (-delta / temp).exp() {
                    occupied.insert(target, a);
                    occupied.insert((ax, ay), b);
                } else {
                    placement.set_loc(a, (ax, ay));
                    placement.set_loc(b, target);
                }
            } else {
                let before = adjacent_cost(netlist, placement, a);
                placement.set_loc(a, target);
                let after = adjacent_cost(netlist, placement, a);
                let delta = after - before;
                if delta <= 0.0 || rng.gen_f64() < (-delta / temp).exp() {
                    occupied.remove(&(ax, ay));
                    occupied.insert(target, a);
                } else {
                    placement.set_loc(a, (ax, ay));
                }
            }
        }
        temp *= config.cooling;
        window = (window * 0.93).max(2.0);
    }

    polish(netlist, placement, occupied, bounds);
}

/// Zero-temperature polish: every cell is offered its neighbourhood-median
/// site (the star-wirelength optimum); the move — or a swap with the
/// occupant — is taken when total adjacent wirelength drops. This kills
/// the distance *outliers* annealing leaves behind, which otherwise set
/// the critical path of deep pipelines.
fn polish(
    netlist: &Netlist,
    placement: &mut Placement,
    occupied: &mut HashMap<(u16, u16), CellId>,
    bounds: Region,
) {
    for _sweep in 0..3 {
        let mut improved = false;
        for (a, cell) in netlist.cells() {
            let Some(target) = median_site(netlist, placement, a, cell.kind, bounds) else {
                continue;
            };
            let old = placement.loc(a);
            if target == old {
                continue;
            }
            match occupied.get(&target).copied() {
                None => {
                    let before = adjacent_cost(netlist, placement, a);
                    placement.set_loc(a, target);
                    let after = adjacent_cost(netlist, placement, a);
                    if after < before {
                        occupied.remove(&old);
                        occupied.insert(target, a);
                        improved = true;
                    } else {
                        placement.set_loc(a, old);
                    }
                }
                Some(b) => {
                    if b == a || !site_legal(netlist.cell(b).kind, old.0) {
                        continue;
                    }
                    let before =
                        adjacent_cost(netlist, placement, a) + adjacent_cost(netlist, placement, b);
                    placement.set_loc(a, target);
                    placement.set_loc(b, old);
                    let after =
                        adjacent_cost(netlist, placement, a) + adjacent_cost(netlist, placement, b);
                    if after < before {
                        occupied.insert(target, a);
                        occupied.insert(old, b);
                        improved = true;
                    } else {
                        placement.set_loc(a, old);
                        placement.set_loc(b, target);
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
}

/// The legal site closest to the median of a cell's connected neighbours,
/// clamped into `bounds`.
fn median_site(
    netlist: &Netlist,
    placement: &Placement,
    cell: CellId,
    kind: CellKind,
    bounds: Region,
) -> Option<(u16, u16)> {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &net in netlist.input_nets(cell) {
        let d = netlist.net(net).driver;
        if d != cell {
            let (x, y) = placement.loc(d);
            xs.push(x);
            ys.push(y);
        }
    }
    if let Some(net) = netlist.output_net(cell) {
        for &s in &netlist.net(net).sinks {
            if s != cell {
                let (x, y) = placement.loc(s);
                xs.push(x);
                ys.push(y);
            }
        }
    }
    if xs.is_empty() {
        return None;
    }
    xs.sort_unstable();
    ys.sort_unstable();
    let x = snap_column_in(kind, xs[xs.len() / 2], bounds.x0, bounds.x1());
    Some((x, ys[ys.len() / 2].clamp(bounds.y0, bounds.y1() - 1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsb_netlist::Cell;

    fn chain(n: usize) -> Netlist {
        let mut nl = Netlist::new("chain");
        let mut prev = nl.add_cell(Cell::ff("c0", 8));
        for i in 1..n {
            let c = nl.add_cell(Cell::comb(format!("c{i}"), 8, 0.4, 8));
            nl.connect(prev, &[c]);
            prev = c;
        }
        nl
    }

    #[test]
    fn placement_is_deterministic() {
        let nl = chain(50);
        let d = Device::ultrascale_plus_vu9p();
        let p1 = place(&nl, &d, 7);
        let p2 = place(&nl, &d, 7);
        assert_eq!(p1, p2);
    }

    #[test]
    fn different_seeds_differ() {
        let nl = chain(50);
        let d = Device::ultrascale_plus_vu9p();
        let p1 = place(&nl, &d, 1);
        let p2 = place(&nl, &d, 2);
        assert_ne!(p1, p2);
    }

    #[test]
    fn all_cells_in_bounds_and_exclusive() {
        let nl = chain(200);
        let d = Device::zynq_zc706();
        let p = place(&nl, &d, 3);
        assert!(p.in_bounds());
        let mut seen = std::collections::HashSet::new();
        for (id, _) in nl.cells() {
            assert!(seen.insert(p.loc(id)), "site collision at {:?}", p.loc(id));
        }
    }

    #[test]
    fn bram_cells_sit_in_bram_columns() {
        let mut nl = Netlist::new("mem");
        let src = nl.add_cell(Cell::ff("src", 32));
        let brams: Vec<_> = (0..20)
            .map(|i| nl.add_cell(Cell::bram(format!("b{i}"), 32, 4)))
            .collect();
        nl.connect(src, &brams);
        let d = Device::ultrascale_plus_vu9p();
        let p = place(&nl, &d, 11);
        for &b in &brams {
            assert!(site_legal(CellKind::Bram, p.loc(b).0));
        }
    }

    #[test]
    fn annealing_does_not_blow_up_wirelength() {
        // The annealer should leave a short chain reasonably compact.
        let nl = chain(30);
        let d = Device::ultrascale_plus_vu9p();
        let p = place(&nl, &d, 5);
        let total = p.total_hpwl(&nl);
        assert!(total < 30.0 * 40.0, "chain HPWL {total} looks unoptimized");
    }

    #[test]
    fn broadcast_sinks_must_spread() {
        // 64 sinks of one net cannot all sit adjacent to the driver:
        // exclusivity forces a spread that grows with fanout.
        let mut nl = Netlist::new("bcast");
        let src = nl.add_cell(Cell::ff("src", 32));
        let sinks: Vec<_> = (0..64)
            .map(|i| nl.add_cell(Cell::comb(format!("s{i}"), 32, 0.4, 32)))
            .collect();
        nl.connect(src, &sinks);
        let d = Device::ultrascale_plus_vu9p();
        let p = place(&nl, &d, 9);
        let max_dist = sinks.iter().map(|&s| p.dist(src, s)).fold(0.0f64, f64::max);
        assert!(
            max_dist >= 4.0,
            "64 exclusive sites imply spread, got {max_dist}"
        );
    }

    #[test]
    fn empty_netlist_is_ok() {
        let nl = Netlist::new("empty");
        let p = place(&nl, &Device::virtex7(), 0);
        assert!(p.is_empty());
    }

    #[test]
    fn region_placement_confines_and_stays_legal() {
        let nl = chain(120);
        let d = Device::ultrascale_plus_vu9p();
        let region = Region {
            x0: 40,
            y0: 10,
            w: 24,
            h: 60,
        };
        let p = place_in_region(&nl, &d, region, 7, AnnealConfig::default());
        let mut seen = std::collections::HashSet::new();
        for (id, cell) in nl.cells() {
            let loc = p.loc(id);
            assert!(region.contains(loc), "cell {id} at {loc:?} left {region:?}");
            assert!(site_legal(cell.kind, loc.0));
            assert!(seen.insert(loc), "site collision at {loc:?}");
        }
    }

    #[test]
    fn region_placement_is_a_pure_function_of_inputs() {
        let nl = chain(80);
        let d = Device::ultrascale_plus_vu9p();
        let region = Region {
            x0: 12,
            y0: 0,
            w: 20,
            h: 120,
        };
        let a = place_in_region(&nl, &d, region, 3, AnnealConfig::default());
        let b = place_in_region(&nl, &d, region, 3, AnnealConfig::default());
        assert_eq!(a, b);
        let c = place_in_region(&nl, &d, region, 4, AnnealConfig::default());
        assert_ne!(a, c);
    }

    #[test]
    fn full_grid_region_matches_flat_placement() {
        // The flat path is the full-grid special case of the region path:
        // the same arithmetic must fall out of both entry points.
        let nl = chain(100);
        let d = Device::zynq_zc706();
        let flat = place_with(&nl, &d, 9, AnnealConfig::default());
        let region = place_in_region(&nl, &d, Region::full(&d), 9, AnnealConfig::default());
        assert_eq!(flat, region);
    }

    #[test]
    fn region_fits_bram_and_dsp_kinds() {
        let mut nl = Netlist::new("mix");
        let src = nl.add_cell(Cell::ff("src", 32));
        let mut sinks = Vec::new();
        for i in 0..6 {
            sinks.push(nl.add_cell(Cell::bram(format!("b{i}"), 32, 1)));
            sinks.push(nl.add_cell(Cell::dsp(format!("d{i}"), 32, 2.0, 1)));
        }
        nl.connect(src, &sinks);
        let d = Device::ultrascale_plus_vu9p();
        // Minimum-width strip: still holds one BRAM and one DSP column.
        let region = Region {
            x0: 7,
            y0: 0,
            w: 12,
            h: 120,
        };
        let p = place_in_region(&nl, &d, region, 5, AnnealConfig::default());
        for (id, cell) in nl.cells() {
            assert!(region.contains(p.loc(id)));
            assert!(site_legal(cell.kind, p.loc(id).0), "{}", cell.name);
        }
    }
}
