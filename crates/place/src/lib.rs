//! # hlsb-place — deterministic placement for the simulated fabric
//!
//! Turns a [`hlsb_netlist::Netlist`] into cell coordinates on a
//! [`hlsb_fabric::Device`] grid:
//!
//! 1. a **levelized seed**: cells are spread left-to-right by dataflow
//!    level and top-to-bottom within a level (connectivity-ordered), with
//!    BRAM/DSP cells snapped to their dedicated columns, then
//! 2. **simulated-annealing refinement** minimizing total half-perimeter
//!    wirelength (HPWL) under a one-cell-per-site exclusivity rule.
//!
//! Site exclusivity is what makes broadcasts expensive: the `k` sinks of a
//! high-fanout net must occupy `k` distinct sites, so their spread grows
//! like `sqrt(k)` no matter how good the placement is — exactly the
//! physical phenomenon the paper measures with its skeleton designs.
//!
//! Large dataflow designs can alternatively be placed *island by island*:
//! [`partition()`] cuts the netlist along its FIFO seams, [`reserve_regions`]
//! assigns each island a vertical strip of the device, [`stitch_crossings`]
//! registers every inter-island net, and [`place_in_region`] anneals each
//! island independently — embarrassingly parallel and bit-identical to a
//! sequential run, because each island placement is a pure function of
//! `(island netlist, region, seed)`.
//!
//! All randomness is seeded (a seeded xoshiro generator (`hlsb-rng`)), so placements are
//! reproducible.
//!
//! # Example
//!
//! ```
//! use hlsb_fabric::Device;
//! use hlsb_netlist::{Cell, Netlist};
//! use hlsb_place::place;
//!
//! let mut nl = Netlist::new("demo");
//! let a = nl.add_cell(Cell::ff("a", 8));
//! let b = nl.add_cell(Cell::comb("b", 8, 0.5, 8));
//! nl.connect(a, &[b]);
//! let p = place(&nl, &Device::ultrascale_plus_vu9p(), 42);
//! assert_ne!(p.loc(a), p.loc(b)); // exclusivity
//! ```

pub mod anneal;
pub mod partition;
pub mod placement;
pub mod sites;

pub use anneal::{place, place_in_region, place_with, AnnealConfig};
pub use partition::{
    auto_islands, max_islands, partition, reserve_regions, stitch_crossings, CrossingReport,
    Partition, MIN_REGION_W,
};
pub use placement::{Placement, Region};
pub use sites::{site_legal, snap_column_in};
