//! Placement result and geometric queries.

use hlsb_netlist::{CellId, Net, Netlist};

/// A rectangular placement region in absolute device-grid coordinates:
/// the half-open window `[x0, x0+w) × [y0, y0+h)`. Flat placement uses
/// the full device grid; island-partitioned placement reserves one
/// disjoint region per island (see `crate::partition`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Leftmost column.
    pub x0: u16,
    /// Topmost row.
    pub y0: u16,
    /// Width in columns.
    pub w: u16,
    /// Height in rows.
    pub h: u16,
}

impl Region {
    /// The full grid of a device.
    pub fn full(device: &hlsb_fabric::Device) -> Self {
        Region {
            x0: 0,
            y0: 0,
            w: device.grid_w as u16,
            h: device.grid_h as u16,
        }
    }

    /// One past the rightmost column.
    pub fn x1(&self) -> u16 {
        self.x0 + self.w
    }

    /// One past the bottom row.
    pub fn y1(&self) -> u16 {
        self.y0 + self.h
    }

    /// Number of sites in the region.
    pub fn sites(&self) -> u64 {
        u64::from(self.w) * u64::from(self.h)
    }

    /// Whether a location falls inside the region.
    pub fn contains(&self, loc: (u16, u16)) -> bool {
        loc.0 >= self.x0 && loc.0 < self.x1() && loc.1 >= self.y0 && loc.1 < self.y1()
    }
}

/// Coordinates for every cell of a netlist, in device grid units.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    locs: Vec<(u16, u16)>,
    /// Grid width the placement was made for.
    pub grid_w: u32,
    /// Grid height the placement was made for.
    pub grid_h: u32,
}

impl Placement {
    /// Creates a placement from explicit coordinates.
    pub fn from_locs(locs: Vec<(u16, u16)>, grid_w: u32, grid_h: u32) -> Self {
        Placement {
            locs,
            grid_w,
            grid_h,
        }
    }

    /// Number of placed cells.
    pub fn len(&self) -> usize {
        self.locs.len()
    }

    /// Whether the placement is empty.
    pub fn is_empty(&self) -> bool {
        self.locs.is_empty()
    }

    /// Location of a cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell id is out of bounds.
    pub fn loc(&self, cell: CellId) -> (u16, u16) {
        self.locs[cell.index()]
    }

    /// Sets the location of a cell (used by annealing moves and by fanout
    /// optimization when it creates duplicate registers).
    ///
    /// # Panics
    ///
    /// Panics if the cell id is out of bounds.
    pub fn set_loc(&mut self, cell: CellId, loc: (u16, u16)) {
        self.locs[cell.index()] = loc;
    }

    /// Appends a location for a newly added cell. Must be called in cell-id
    /// order to stay aligned with the netlist.
    pub fn push_loc(&mut self, loc: (u16, u16)) {
        self.locs.push(loc);
    }

    /// Manhattan distance between two cells, in grid units.
    pub fn dist(&self, a: CellId, b: CellId) -> f64 {
        let (ax, ay) = self.loc(a);
        let (bx, by) = self.loc(b);
        f64::from(ax.abs_diff(bx)) + f64::from(ay.abs_diff(by))
    }

    /// Half-perimeter wirelength of a net.
    pub fn hpwl(&self, net: &Net) -> f64 {
        let (dx, dy) = self.loc(net.driver);
        let (mut min_x, mut max_x, mut min_y, mut max_y) = (dx, dx, dy, dy);
        for &s in &net.sinks {
            let (x, y) = self.loc(s);
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        f64::from(max_x - min_x) + f64::from(max_y - min_y)
    }

    /// Total HPWL over all nets of a netlist.
    pub fn total_hpwl(&self, netlist: &Netlist) -> f64 {
        netlist.nets().map(|(_, n)| self.hpwl(n)).sum()
    }

    /// Whether all cells are inside the grid.
    pub fn in_bounds(&self) -> bool {
        self.locs
            .iter()
            .all(|&(x, y)| u32::from(x) < self.grid_w && u32::from(y) < self.grid_h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsb_netlist::Cell;

    #[test]
    fn dist_is_manhattan() {
        let p = Placement::from_locs(vec![(0, 0), (3, 4)], 10, 10);
        assert_eq!(p.dist(CellId(0), CellId(1)), 7.0);
        assert_eq!(p.dist(CellId(1), CellId(0)), 7.0);
    }

    #[test]
    fn hpwl_of_star_net() {
        let mut nl = Netlist::new("t");
        let d = nl.add_cell(Cell::ff("d", 1));
        let s1 = nl.add_cell(Cell::ff("s1", 1));
        let s2 = nl.add_cell(Cell::ff("s2", 1));
        let n = nl.connect(d, &[s1, s2]);
        let p = Placement::from_locs(vec![(5, 5), (0, 5), (9, 7)], 10, 10);
        assert_eq!(p.hpwl(nl.net(n)), 9.0 + 2.0);
        assert_eq!(p.total_hpwl(&nl), 11.0);
    }

    #[test]
    fn bounds_check() {
        let p = Placement::from_locs(vec![(9, 9)], 10, 10);
        assert!(p.in_bounds());
        let q = Placement::from_locs(vec![(10, 0)], 10, 10);
        assert!(!q.in_bounds());
    }
}
