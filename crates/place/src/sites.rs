//! Site legality rules.
//!
//! Real FPGAs dedicate whole columns to BRAM and DSP resources; logic can
//! go anywhere else. Forcing memories and multipliers into columns is part
//! of why large buffers scatter physically (paper §3.1, example #2).

use hlsb_netlist::CellKind;

/// Column period of BRAM columns (one in every `BRAM_COL_PERIOD` columns).
pub const BRAM_COL_PERIOD: u16 = 10;
/// Column offset of BRAM columns within the period.
pub const BRAM_COL_OFFSET: u16 = 4;
/// Column period of DSP columns.
pub const DSP_COL_PERIOD: u16 = 10;
/// Column offset of DSP columns within the period.
pub const DSP_COL_OFFSET: u16 = 8;

/// Whether a cell of the given kind may be placed at column `x`.
pub fn site_legal(kind: CellKind, x: u16) -> bool {
    match kind {
        CellKind::Bram => x % BRAM_COL_PERIOD == BRAM_COL_OFFSET,
        CellKind::Dsp => x % DSP_COL_PERIOD == DSP_COL_OFFSET,
        // Logic, registers, ports and constants can go anywhere outside
        // the dedicated columns.
        _ => x % BRAM_COL_PERIOD != BRAM_COL_OFFSET && x % DSP_COL_PERIOD != DSP_COL_OFFSET,
    }
}

/// Snaps column `x` to the nearest legal column for `kind` on a grid of
/// width `grid_w`.
pub fn snap_column(kind: CellKind, x: u16, grid_w: u16) -> u16 {
    if site_legal(kind, x) {
        return x.min(grid_w - 1);
    }
    for d in 1..grid_w {
        let lo = x.saturating_sub(d);
        if site_legal(kind, lo) {
            return lo;
        }
        let hi = x.saturating_add(d).min(grid_w - 1);
        if site_legal(kind, hi) {
            return hi;
        }
    }
    x.min(grid_w - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bram_and_dsp_columns_disjoint() {
        for x in 0..100u16 {
            assert!(
                !(site_legal(CellKind::Bram, x) && site_legal(CellKind::Dsp, x)),
                "column {x} legal for both"
            );
        }
    }

    #[test]
    fn logic_avoids_dedicated_columns() {
        assert!(!site_legal(CellKind::Comb, BRAM_COL_OFFSET));
        assert!(!site_legal(CellKind::Ff, DSP_COL_OFFSET));
        assert!(site_legal(CellKind::Comb, 0));
    }

    #[test]
    fn snap_reaches_legal_column() {
        for x in 0..60u16 {
            let b = snap_column(CellKind::Bram, x, 60);
            assert!(site_legal(CellKind::Bram, b), "x={x} snapped to {b}");
            let d = snap_column(CellKind::Dsp, x, 60);
            assert!(site_legal(CellKind::Dsp, d), "x={x} snapped to {d}");
            let l = snap_column(CellKind::Comb, x, 60);
            assert!(site_legal(CellKind::Comb, l), "x={x} snapped to {l}");
        }
    }

    #[test]
    fn snap_stays_in_bounds() {
        assert!(snap_column(CellKind::Bram, 59, 60) < 60);
    }
}
