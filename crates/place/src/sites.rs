//! Site legality rules.
//!
//! Real FPGAs dedicate whole columns to BRAM and DSP resources; logic can
//! go anywhere else. Forcing memories and multipliers into columns is part
//! of why large buffers scatter physically (paper §3.1, example #2).

use hlsb_netlist::CellKind;

/// Column period of BRAM columns (one in every `BRAM_COL_PERIOD` columns).
pub const BRAM_COL_PERIOD: u16 = 10;
/// Column offset of BRAM columns within the period.
pub const BRAM_COL_OFFSET: u16 = 4;
/// Column period of DSP columns.
pub const DSP_COL_PERIOD: u16 = 10;
/// Column offset of DSP columns within the period.
pub const DSP_COL_OFFSET: u16 = 8;

/// Whether a cell of the given kind may be placed at column `x`.
pub fn site_legal(kind: CellKind, x: u16) -> bool {
    match kind {
        CellKind::Bram => x % BRAM_COL_PERIOD == BRAM_COL_OFFSET,
        CellKind::Dsp => x % DSP_COL_PERIOD == DSP_COL_OFFSET,
        // Logic, registers, ports and constants can go anywhere outside
        // the dedicated columns.
        _ => x % BRAM_COL_PERIOD != BRAM_COL_OFFSET && x % DSP_COL_PERIOD != DSP_COL_OFFSET,
    }
}

/// Snaps column `x` to the nearest legal column for `kind` on a grid of
/// width `grid_w`.
pub fn snap_column(kind: CellKind, x: u16, grid_w: u16) -> u16 {
    snap_column_in(kind, x, 0, grid_w)
}

/// Snaps column `x` to the nearest legal column for `kind` within the
/// half-open column range `[x0, x1)` — the column window of a reserved
/// placement region. `snap_column` is the full-grid special case. A range
/// spanning at least one full BRAM/DSP period (10 columns) is guaranteed
/// to contain a legal column for every kind; narrower ranges may fall
/// back to the clamped input.
pub fn snap_column_in(kind: CellKind, x: u16, x0: u16, x1: u16) -> u16 {
    debug_assert!(x0 < x1, "empty column range");
    let x = x.clamp(x0, x1 - 1);
    if site_legal(kind, x) {
        return x;
    }
    for d in 1..(x1 - x0) {
        let lo = x.saturating_sub(d).max(x0);
        if site_legal(kind, lo) {
            return lo;
        }
        let hi = x.saturating_add(d).min(x1 - 1);
        if site_legal(kind, hi) {
            return hi;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bram_and_dsp_columns_disjoint() {
        for x in 0..100u16 {
            assert!(
                !(site_legal(CellKind::Bram, x) && site_legal(CellKind::Dsp, x)),
                "column {x} legal for both"
            );
        }
    }

    #[test]
    fn logic_avoids_dedicated_columns() {
        assert!(!site_legal(CellKind::Comb, BRAM_COL_OFFSET));
        assert!(!site_legal(CellKind::Ff, DSP_COL_OFFSET));
        assert!(site_legal(CellKind::Comb, 0));
    }

    #[test]
    fn snap_reaches_legal_column() {
        for x in 0..60u16 {
            let b = snap_column(CellKind::Bram, x, 60);
            assert!(site_legal(CellKind::Bram, b), "x={x} snapped to {b}");
            let d = snap_column(CellKind::Dsp, x, 60);
            assert!(site_legal(CellKind::Dsp, d), "x={x} snapped to {d}");
            let l = snap_column(CellKind::Comb, x, 60);
            assert!(site_legal(CellKind::Comb, l), "x={x} snapped to {l}");
        }
    }

    #[test]
    fn snap_stays_in_bounds() {
        assert!(snap_column(CellKind::Bram, 59, 60) < 60);
    }

    #[test]
    fn bounded_snap_stays_in_range_and_finds_legal_columns() {
        // Any 12-wide window holds one BRAM and one DSP column.
        for x0 in 0..48u16 {
            let x1 = x0 + 12;
            for x in 0..60u16 {
                for kind in [CellKind::Bram, CellKind::Dsp, CellKind::Comb] {
                    let c = snap_column_in(kind, x, x0, x1);
                    assert!(
                        c >= x0 && c < x1,
                        "{kind:?} x={x} -> {c} outside [{x0},{x1})"
                    );
                    assert!(site_legal(kind, c), "{kind:?} x={x} -> illegal column {c}");
                }
            }
        }
    }

    #[test]
    fn bounded_snap_with_full_range_matches_snap_column() {
        for x in 0..60u16 {
            for kind in [CellKind::Bram, CellKind::Dsp, CellKind::Comb, CellKind::Ff] {
                assert_eq!(snap_column(kind, x, 60), snap_column_in(kind, x, 0, 60));
            }
        }
    }
}
