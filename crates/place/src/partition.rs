//! Netlist partitioning for island-based parallel placement.
//!
//! The implement stage can cut a netlist into *islands* along its dataflow
//! seams (the FIFO storage macros between kernels, exported by lowering as
//! `seam` cells), reserve a vertical strip of the device per island, and
//! anneal every island independently — in parallel, with no shared state.
//! Nets that cross islands are *stitched* with a register placed on the
//! sink side ([`stitch_crossings`]), so every inter-island path starts and
//! ends at a flop and gets a full clock period: the placer never has to
//! trade island-local quality against crossing wirelength.
//!
//! Everything here is deterministic and thread-count independent:
//! [`partition`] and [`auto_islands`] are pure functions of the netlist
//! (and device), never of `HLSB_THREADS`, so partitioned placement is a
//! pure function of `(netlist, seed, partition)`.

use crate::placement::Region;
use hlsb_fabric::Device;
use hlsb_netlist::{Cell, CellId, Netlist};
use std::collections::VecDeque;

/// Minimum width of a reserved island strip, in columns. One full BRAM/DSP
/// column period (10) plus slack, so every strip is guaranteed to contain
/// at least one legal column for each dedicated cell kind.
pub const MIN_REGION_W: u16 = 12;

/// A disjoint cover of a netlist's cells by islands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Island index of every cell (indexed by `CellId::index`).
    pub island_of: Vec<u32>,
    /// Cells of each island, strictly ascending — the exact form
    /// `Netlist::subgraph` requires.
    pub islands: Vec<Vec<CellId>>,
}

impl Partition {
    /// Number of islands.
    pub fn len(&self) -> usize {
        self.islands.len()
    }

    /// Whether the partition has no islands.
    pub fn is_empty(&self) -> bool {
        self.islands.is_empty()
    }
}

/// Summary of the registers inserted by [`stitch_crossings`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrossingReport {
    /// Nets that had at least one sink in a foreign island.
    pub cut_nets: u32,
    /// Crossing registers inserted (one per (net, foreign island) pair).
    pub registers: u32,
    /// Total flip-flop bits those registers cost.
    pub register_bits: u64,
}

/// The largest island count a device can host: one `MIN_REGION_W`-wide
/// vertical strip per island.
pub fn max_islands(device: &Device) -> u32 {
    (device.grid_w / u32::from(MIN_REGION_W)).max(1)
}

/// Default island count for a netlist on a device. Pure function of
/// `(netlist size, device geometry)` — deliberately *not* of the worker
/// thread count, so the partition (and therefore the placement) is
/// identical no matter how many threads run the flow.
///
/// Small designs stay flat: below ~1200 cells the per-island annealing
/// floor (`min_moves`) erases the parallel win and the crossing registers
/// are pure overhead.
pub fn auto_islands(netlist: &Netlist, device: &Device) -> u32 {
    let n = netlist.cell_count();
    if n < 1200 {
        1
    } else {
        ((n / 1500) as u32).clamp(2, 8).min(max_islands(device))
    }
}

/// Cuts a netlist into (at most) `k` islands.
///
/// `seams` lists the cells whose incident arcs are preferred cut points —
/// the FIFO storage macros between dataflow kernels. Connected components
/// of the seam-severed netlist become the initial islands (so kernels
/// never straddle a cut when the seams separate them); each seam cell then
/// joins the lowest-numbered island among its neighbours. Components are
/// balanced into `k` islands by longest-processing-time bin packing; if
/// the netlist is monolithic (fewer components than `k` — e.g. a single
/// kernel, or no seams at all), the largest islands are split by a
/// farthest-point two-seed BFS grower until `k` islands exist or nothing
/// splittable remains.
///
/// The result covers every cell exactly once, each island's cell list is
/// strictly ascending, islands are ordered by their smallest cell id, and
/// the whole construction is deterministic.
pub fn partition(netlist: &Netlist, seams: &[CellId], k: u32) -> Partition {
    let n = netlist.cell_count();
    let k = (k as usize).clamp(1, n.max(1));
    let mut is_seam = vec![false; n];
    for &s in seams {
        is_seam[s.index()] = true;
    }

    // Undirected adjacency over arcs with no seam endpoint.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (_, net) in netlist.nets() {
        let d = net.driver.index();
        if is_seam[d] {
            continue;
        }
        for &s in &net.sinks {
            let s = s.index();
            if is_seam[s] || s == d {
                continue;
            }
            adj[d].push(s as u32);
            adj[s].push(d as u32);
        }
    }

    // Connected components, discovered in cell-id order.
    const UNASSIGNED: u32 = u32::MAX;
    let mut comp_of = vec![UNASSIGNED; n];
    let mut comp_count = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if is_seam[start] || comp_of[start] != UNASSIGNED {
            continue;
        }
        let c = comp_count;
        comp_count += 1;
        comp_of[start] = c;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &w in &adj[v] {
                let w = w as usize;
                if comp_of[w] == UNASSIGNED {
                    comp_of[w] = c;
                    queue.push_back(w);
                }
            }
        }
    }

    // All cells are seams (degenerate): one island of everything.
    if comp_count == 0 {
        return Partition {
            island_of: vec![0; n],
            islands: vec![(0..n as u32).map(CellId).collect()],
        };
    }

    // Seam cells join the lowest-numbered component among their
    // neighbours. Seam-to-seam chains resolve over repeated rounds;
    // anything still orphaned falls into component 0.
    loop {
        let mut changed = false;
        for (id, _) in netlist.cells() {
            let i = id.index();
            if !is_seam[i] || comp_of[i] != UNASSIGNED {
                continue;
            }
            let mut best = UNASSIGNED;
            for &net in netlist.input_nets(id) {
                let c = comp_of[netlist.net(net).driver.index()];
                best = best.min(c);
            }
            if let Some(net) = netlist.output_net(id) {
                for &s in &netlist.net(net).sinks {
                    best = best.min(comp_of[s.index()]);
                }
            }
            if best != UNASSIGNED {
                comp_of[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for c in comp_of.iter_mut() {
        if *c == UNASSIGNED {
            *c = 0;
        }
    }

    // Component member lists (ascending by construction).
    let mut comps: Vec<Vec<CellId>> = vec![Vec::new(); comp_count as usize];
    for i in 0..n {
        comps[comp_of[i] as usize].push(CellId(i as u32));
    }

    // Split any component above ~1.25× the ideal share before packing: a
    // dominant component (one big kernel plus control crumbs is the
    // common shape) would otherwise pin all annealing work on one island
    // and leave the rest nearly empty — no parallel win, no balance.
    let cap = (n / k).max(1) + (n / (4 * k)).max(1);
    let mut guard = 8 * k;
    while guard > 0 {
        guard -= 1;
        let (idx, len) = comps
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.len()))
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
            .expect("comp_count >= 1");
        if len <= cap || len < 2 {
            break;
        }
        let big = comps.swap_remove(idx);
        let (a, b) = split_island(netlist, &big);
        comps.push(a);
        comps.push(b);
    }

    let mut islands: Vec<Vec<CellId>> = if comps.len() > k {
        pack_components(comps, k)
    } else {
        comps
    };

    while islands.len() < k {
        // Largest island (tie: first in the list). Singletons can't split.
        let (idx, _) = islands
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.len().cmp(&b.len()).then(ib.cmp(ia)))
            .expect("at least one island");
        if islands[idx].len() < 2 {
            break;
        }
        let big = islands.swap_remove(idx);
        let (a, b) = split_island(netlist, &big);
        islands.push(a);
        islands.push(b);
    }

    islands.retain(|i| !i.is_empty());
    islands.sort_by_key(|i| i[0]);

    let mut island_of = vec![0u32; n];
    for (idx, island) in islands.iter().enumerate() {
        for &c in island {
            island_of[c.index()] = idx as u32;
        }
    }
    Partition { island_of, islands }
}

/// Longest-processing-time packing of components into `k` islands:
/// components by descending size (tie: smallest member id first), each
/// into the currently smallest island (tie: lowest island index). The
/// merged member lists are re-sorted to stay strictly ascending.
fn pack_components(mut comps: Vec<Vec<CellId>>, k: usize) -> Vec<Vec<CellId>> {
    comps.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
    let mut bins: Vec<Vec<CellId>> = vec![Vec::new(); k];
    for comp in comps {
        let (idx, _) = bins
            .iter()
            .enumerate()
            .min_by(|(ia, a), (ib, b)| a.len().cmp(&b.len()).then(ia.cmp(ib)))
            .expect("k >= 1");
        bins[idx].extend(comp);
    }
    for bin in bins.iter_mut() {
        bin.sort_unstable();
    }
    bins
}

/// Splits one island in two by farthest-point seeding: seed A is the
/// island's smallest cell id, seed B the cell farthest from A by BFS hops
/// (unreachable counts as farthest; ties go to the smaller id), then the
/// two sides grow breadth-first with the smaller side claiming next (tie:
/// side A). Cells unreachable from either seed go to side A.
fn split_island(netlist: &Netlist, island: &[CellId]) -> (Vec<CellId>, Vec<CellId>) {
    let n = netlist.cell_count();
    let mut in_island = vec![false; n];
    for &c in island {
        in_island[c.index()] = true;
    }
    // Island-local undirected adjacency.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (_, net) in netlist.nets() {
        let d = net.driver.index();
        if !in_island[d] {
            continue;
        }
        for &s in &net.sinks {
            let s = s.index();
            if s != d && in_island[s] {
                adj[d].push(s as u32);
                adj[s].push(d as u32);
            }
        }
    }

    let seed_a = island[0];
    let dist = bfs_dist(&adj, seed_a, n);
    let seed_b = island
        .iter()
        .copied()
        .filter(|&c| c != seed_a)
        .max_by(|x, y| dist[x.index()].cmp(&dist[y.index()]).then(y.cmp(x)))
        .expect("island has at least two cells");

    const FREE: u8 = 0;
    let mut side = vec![FREE; n];
    let mut claimed = [1usize, 1];
    let mut frontier = [VecDeque::new(), VecDeque::new()];
    side[seed_a.index()] = 1;
    side[seed_b.index()] = 2;
    frontier[0].push_back(seed_a.index());
    frontier[1].push_back(seed_b.index());
    let mut remaining = island.len() - 2;
    while remaining > 0 && (!frontier[0].is_empty() || !frontier[1].is_empty()) {
        // The smaller side claims next; an exhausted side concedes.
        let who = if frontier[0].is_empty() {
            1
        } else if frontier[1].is_empty() {
            0
        } else if claimed[1] < claimed[0] {
            1
        } else {
            0
        };
        let v = frontier[who].pop_front().expect("non-empty frontier");
        for &w in &adj[v] {
            let w = w as usize;
            if side[w] == FREE {
                side[w] = who as u8 + 1;
                claimed[who] += 1;
                remaining -= 1;
                frontier[who].push_back(w);
            }
        }
    }

    let mut a = Vec::new();
    let mut b = Vec::new();
    for &c in island {
        if side[c.index()] == 2 {
            b.push(c);
        } else {
            a.push(c);
        }
    }
    (a, b)
}

fn bfs_dist(adj: &[Vec<u32>], from: CellId, n: usize) -> Vec<u32> {
    let mut dist = vec![u32::MAX; n];
    dist[from.index()] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(from.index());
    while let Some(v) = queue.pop_front() {
        for &w in &adj[v] {
            let w = w as usize;
            if dist[w] == u32::MAX {
                dist[w] = dist[v] + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Registers every island-crossing arc: for each net whose driver sits in
/// island *i* and which has sinks in a foreign island *j*, one crossing
/// flip-flop `xing_n<net>_i<j>` is inserted *in island j* and the foreign
/// sinks are re-driven by it. After stitching, no net inside any island's
/// subgraph reaches outside it, and every driver→crossing-register arc is
/// the only inter-island wiring — flop-to-flop, so it gets a full clock
/// period regardless of how far apart the reserved regions are (the
/// RapidStream recipe). The extra cycle of latency is provisioned in the
/// control logic via `RtlOptions::crossing_slots`.
///
/// New cells are appended to the netlist and to their island's cell list
/// (ids grow monotonically, so the lists stay ascending).
pub fn stitch_crossings(netlist: &mut Netlist, part: &mut Partition) -> CrossingReport {
    let mut report = CrossingReport::default();
    let net_count = netlist.net_count();
    for raw in 0..net_count {
        let net_id = hlsb_netlist::NetId(raw as u32);
        let driver = netlist.net(net_id).driver;
        let home = part.island_of[driver.index()];
        // Foreign islands with sinks on this net, ascending.
        let mut foreign: Vec<u32> = netlist
            .net(net_id)
            .sinks
            .iter()
            .map(|s| part.island_of[s.index()])
            .filter(|&i| i != home)
            .collect();
        foreign.sort_unstable();
        foreign.dedup();
        if foreign.is_empty() {
            continue;
        }
        report.cut_nets += 1;
        let width = netlist.cell(driver).width;
        for island in foreign {
            let moved: Vec<CellId> = netlist
                .net(net_id)
                .sinks
                .iter()
                .copied()
                .filter(|s| part.island_of[s.index()] == island)
                .collect();
            let xff = netlist.add_cell(Cell::ff(format!("xing_n{raw}_i{island}"), width));
            part.island_of.push(island);
            part.islands[island as usize].push(xff);
            netlist.move_sinks(driver, xff, &moved);
            netlist.connect(driver, &[xff]);
            report.registers += 1;
            report.register_bits += u64::from(width);
        }
    }
    report
}

/// Reserves one full-height vertical strip per island, proportional to
/// island size with a `MIN_REGION_W` floor, covering the device exactly.
/// Returns `None` when the device cannot host the partition — too many
/// islands for the grid width, or some island too big for its strip (the
/// same one-cell-per-two-sites margin `place_in_region` enforces). The
/// caller falls back to flat placement in that case.
pub fn reserve_regions(device: &Device, sizes: &[usize]) -> Option<Vec<Region>> {
    let k = sizes.len();
    if k == 0 {
        return Some(Vec::new());
    }
    let gw = device.grid_w as u16;
    let gh = device.grid_h as u16;
    if (k as u32) * u32::from(MIN_REGION_W) > u32::from(gw) {
        return None;
    }
    let total: usize = sizes.iter().sum::<usize>().max(1);
    let mut widths: Vec<u16> = sizes
        .iter()
        .map(|&s| {
            let ideal = (u64::from(gw) * s as u64 / total as u64) as u16;
            ideal.max(MIN_REGION_W)
        })
        .collect();
    // Rebalance to cover the grid exactly: shave the widest strip while
    // over budget, widen the most-deprived strip while under (ties: lowest
    // index). Shaving always terminates or fails — every strip has the
    // MIN_REGION_W floor.
    loop {
        let sum: u32 = widths.iter().map(|&w| u32::from(w)).sum();
        match sum.cmp(&u32::from(gw)) {
            std::cmp::Ordering::Equal => break,
            std::cmp::Ordering::Greater => {
                let (idx, _) = widths
                    .iter()
                    .enumerate()
                    .filter(|&(_, &w)| w > MIN_REGION_W)
                    .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))?;
                widths[idx] -= 1;
            }
            std::cmp::Ordering::Less => {
                let (idx, _) = widths
                    .iter()
                    .enumerate()
                    .zip(sizes)
                    .map(|((i, &w), &s)| {
                        let ideal = u64::from(gw) * s as u64 / total as u64;
                        (i, ideal.saturating_sub(u64::from(w)))
                    })
                    .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
                    .expect("k >= 1");
                widths[idx] += 1;
            }
        }
    }

    let mut regions = Vec::with_capacity(k);
    let mut x0 = 0u16;
    for (&w, &s) in widths.iter().zip(sizes) {
        let region = Region {
            x0,
            y0: 0,
            w,
            h: gh,
        };
        if s as u64 >= region.sites() / 2 {
            return None;
        }
        x0 += w;
        regions.push(region);
    }
    Some(regions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsb_netlist::CellKind;

    /// Two comb chains joined through a seam BRAM, plus a broadcast net
    /// from the first chain into the second.
    fn two_kernel_netlist() -> (Netlist, CellId) {
        let mut nl = Netlist::new("two_kernels");
        let mut a = Vec::new();
        for i in 0..40 {
            a.push(nl.add_cell(Cell::comb(format!("a{i}"), 32, 0.4, 32)));
        }
        for w in a.windows(2) {
            nl.connect(w[0], &[w[1]]);
        }
        let fifo = nl.add_cell(Cell::bram("fifo_link", 32, 1));
        nl.connect(*a.last().unwrap(), &[fifo]);
        let mut b = Vec::new();
        for i in 0..40 {
            b.push(nl.add_cell(Cell::comb(format!("b{i}"), 32, 0.4, 32)));
        }
        nl.connect(fifo, &[b[0]]);
        for w in b.windows(2) {
            nl.connect(w[0], &[w[1]]);
        }
        (nl, fifo)
    }

    #[test]
    fn seam_cut_separates_kernels() {
        let (nl, fifo) = two_kernel_netlist();
        let part = partition(&nl, &[fifo], 2);
        assert_eq!(part.len(), 2);
        // Kernel A (ids 0..40) and kernel B (ids 41..81) never share an
        // island; the seam joins one of them.
        assert_eq!(part.island_of[0], part.island_of[39]);
        assert_eq!(part.island_of[41], part.island_of[80]);
        assert_ne!(part.island_of[0], part.island_of[41]);
        let covered: usize = part.islands.iter().map(Vec::len).sum();
        assert_eq!(covered, nl.cell_count());
        for island in &part.islands {
            assert!(island.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn partition_is_deterministic() {
        let (nl, fifo) = two_kernel_netlist();
        let p1 = partition(&nl, &[fifo], 2);
        let p2 = partition(&nl, &[fifo], 2);
        assert_eq!(p1, p2);
    }

    #[test]
    fn monolithic_netlist_splits_to_k() {
        let (nl, _) = two_kernel_netlist();
        // No seams: one component, split by the BFS grower.
        let part = partition(&nl, &[], 3);
        assert_eq!(part.len(), 3);
        let covered: usize = part.islands.iter().map(Vec::len).sum();
        assert_eq!(covered, nl.cell_count());
        // Roughly balanced: no island holds everything.
        assert!(part.islands.iter().all(|i| i.len() < nl.cell_count()));
    }

    #[test]
    fn more_components_than_islands_pack_balanced() {
        let mut nl = Netlist::new("many");
        for c in 0..6 {
            let mut chain = Vec::new();
            for i in 0..10 {
                chain.push(nl.add_cell(Cell::comb(format!("c{c}_{i}"), 8, 0.4, 8)));
            }
            for w in chain.windows(2) {
                nl.connect(w[0], &[w[1]]);
            }
        }
        let part = partition(&nl, &[], 2);
        assert_eq!(part.len(), 2);
        assert_eq!(part.islands[0].len(), 30);
        assert_eq!(part.islands[1].len(), 30);
    }

    #[test]
    fn stitching_registers_every_crossing() {
        let (mut nl, fifo) = two_kernel_netlist();
        let mut part = partition(&nl, &[fifo], 2);
        let before = nl.cell_count();
        let report = stitch_crossings(&mut nl, &mut part);
        nl.validate().expect("stitched netlist stays well-formed");
        assert!(report.registers >= 1);
        assert_eq!(nl.cell_count(), before + report.registers as usize);
        assert_eq!(report.register_bits, u64::from(report.registers) * 32);
        // Every net now stays inside one island, except driver→xing arcs.
        for (_, net) in nl.nets() {
            let home = part.island_of[net.driver.index()];
            for &s in &net.sinks {
                if part.island_of[s.index()] != home {
                    let name = &nl.cell(s).name;
                    assert!(
                        name.starts_with("xing_"),
                        "unregistered crossing into {name}"
                    );
                    assert_eq!(nl.cell(s).kind, CellKind::Ff);
                }
            }
        }
        // Island lists still ascending and consistent with island_of.
        for (idx, island) in part.islands.iter().enumerate() {
            assert!(island.windows(2).all(|w| w[0] < w[1]));
            for &c in island {
                assert_eq!(part.island_of[c.index()], idx as u32);
            }
        }
    }

    #[test]
    fn reserve_regions_tiles_the_grid() {
        let d = Device::ultrascale_plus_vu9p();
        let regions = reserve_regions(&d, &[500, 1000, 250]).expect("fits");
        assert_eq!(regions.len(), 3);
        let mut x = 0u16;
        for r in &regions {
            assert_eq!(r.x0, x, "strips must tile left to right");
            assert!(r.w >= MIN_REGION_W);
            assert_eq!((r.y0, u32::from(r.h)), (0, d.grid_h));
            x = r.x1();
        }
        assert_eq!(u32::from(x), d.grid_w);
        // Proportionality: the 1000-cell island gets the widest strip.
        assert!(regions[1].w > regions[0].w && regions[1].w > regions[2].w);
    }

    #[test]
    fn reserve_regions_rejects_infeasible() {
        let d = Device::zynq_zc706();
        let too_many = vec![10usize; (d.grid_w / u32::from(MIN_REGION_W) + 1) as usize];
        assert_eq!(reserve_regions(&d, &too_many), None);
        // One island far too big for any strip share.
        let sites = d.grid_w as usize * d.grid_h as usize;
        assert_eq!(reserve_regions(&d, &[1, sites]), None);
    }

    #[test]
    fn auto_islands_keeps_small_designs_flat() {
        let (nl, _) = two_kernel_netlist();
        let d = Device::ultrascale_plus_vu9p();
        assert_eq!(auto_islands(&nl, &d), 1);
        let mut big = Netlist::new("big");
        for i in 0..4000 {
            big.add_cell(Cell::ff(format!("f{i}"), 1));
        }
        let k = auto_islands(&big, &d);
        assert!(k >= 2 && k <= max_islands(&d));
    }
}
