//! # hlsb — broadcast-aware HLS flow (DAC'20 reproduction)
//!
//! End-to-end reproduction of *"Analysis and Optimization of the Implicit
//! Broadcasts in FPGA HLS to Improve Maximum Frequency"* (DAC 2020): an
//! HLS compilation flow — scheduler, RTL generation, placement and static
//! timing on a simulated FPGA fabric — plus the paper's three
//! optimizations:
//!
//! * **broadcast-aware scheduling** (§4.1) via
//!   [`OptimizationOptions::broadcast_aware`];
//! * **synchronization pruning** (§4.2) via
//!   [`OptimizationOptions::sync_pruning`];
//! * **skid-buffer pipeline control** (§4.3) via
//!   [`OptimizationOptions::skid_buffer`] (+ `min_area_skid`).
//!
//! # Example
//!
//! ```
//! use hlsb::{Flow, OptimizationOptions};
//! use hlsb_fabric::Device;
//! use hlsb_ir::builder::DesignBuilder;
//! use hlsb_ir::types::DataType;
//!
//! # fn main() -> Result<(), hlsb::FlowError> {
//! let mut b = DesignBuilder::new("axpy");
//! let fin = b.fifo("in", DataType::Int(32), 2);
//! let fout = b.fifo("out", DataType::Int(32), 2);
//! let mut k = b.kernel("top");
//! let mut l = k.pipelined_loop("main", 1024, 1);
//! let alpha = l.invariant_input("alpha", DataType::Int(32));
//! let x = l.fifo_read(fin, DataType::Int(32));
//! let y = l.mul(alpha, x);
//! l.fifo_write(fout, y);
//! l.finish();
//! k.finish();
//! let design = b.finish()?;
//!
//! let baseline = Flow::new(design.clone())
//!     .device(Device::ultrascale_plus_vu9p())
//!     .clock_mhz(300.0)
//!     .run()?;
//! let optimized = Flow::new(design)
//!     .device(Device::ultrascale_plus_vu9p())
//!     .clock_mhz(300.0)
//!     .options(OptimizationOptions::all())
//!     .run()?;
//! assert!(optimized.fmax_mhz >= baseline.fmax_mhz * 0.9);
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod flow;
pub mod options;
pub mod passes;
pub mod result;
pub mod session;
pub mod trace;

mod cache;

pub use cache::{CacheHit, CacheStats, StageCacheStats};
pub use error::FlowError;
pub use flow::Flow;
pub use options::{OptimizationOptions, Partitioning, PlaceEffort, RegisterInjection};
pub use passes::{FrontEndArtifact, LoopFrontEndInfo, LoopScheduleTrace, ScheduleArtifact};
pub use result::{ImplementationResult, PartitionSummary, Utilization};
pub use session::{FlowSession, ProbeOutcome, SimulationOutcome};
pub use trace::{PassRecord, PassTrace};

// The span-tracing surface (crate `hlsb-trace`), re-exported so flow
// consumers can inspect [`ImplementationResult::span_tree`] and export
// traces without naming the sub-crate.
pub use hlsb_trace::{chrome_trace, MetricsRegistry, TraceTree, Tracer};

// Re-export the sub-crates for downstream convenience.
pub use hlsb_ctrl as ctrl;
pub use hlsb_delay as delay;
pub use hlsb_fabric as fabric;
pub use hlsb_findings as findings;
pub use hlsb_ir as ir;
pub use hlsb_lint as lint;
pub use hlsb_netlist as netlist;
pub use hlsb_place as place;
pub use hlsb_rtlgen as rtlgen;
pub use hlsb_sched as sched;
pub use hlsb_sim as sim;
pub use hlsb_store as store;
pub use hlsb_sync as sync;
pub use hlsb_timing as timing;
pub use hlsb_trace as spantrace;
pub use hlsb_verify as verify;
