//! Content-addressed stage-artifact cache.
//!
//! A [`FlowSession`](crate::FlowSession) keys each cacheable stage output
//! by a content hash of everything that stage reads: the design, the
//! options prefix that affects it, and — where relevant — the clock,
//! device and seed. Variant sweeps (same design, different option sets or
//! clocks) and the lint pre-pass then share the expensive front-end work
//! instead of re-running it per flow.
//!
//! Keying rules (see `DESIGN.md` §3):
//!
//! * **front-end** — `(design, split?)`. Clock-independent, so clock
//!   sweeps share one unroll; `split?` is the `sync_pruning` toggle.
//! * **schedule** — `(front-end key, clock, broadcast_aware?)`, plus the
//!   device and seed *only* when broadcast-aware (the calibrated tables
//!   depend on both; the baseline predicted schedule on neither).
//! * **lower / implement** — not cached: their inputs almost never repeat
//!   within a session and the netlists dominate memory.

use std::collections::HashMap;
use std::fmt::Debug;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::passes::{FrontEndArtifact, ScheduleArtifact};

/// 64-bit FNV-1a.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Content hash of any `Debug` value. The IR types all derive `Debug`
/// with full field coverage, so the debug rendering is a faithful (if
/// verbose) serialization — good enough for cache identity, where a
/// spurious miss only costs a rebuild.
pub(crate) fn hash_debug<T: Debug + ?Sized>(value: &T) -> u64 {
    fnv1a(format!("{value:?}").as_bytes())
}

/// Order-dependent combination of key components.
pub(crate) fn combine(parts: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &p in parts {
        for b in p.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Front-end stage key: `(design, split?)`.
pub(crate) fn front_end_key(design_hash: u64, split: bool) -> u64 {
    combine(&[design_hash, u64::from(split)])
}

/// Schedule stage key; `device_hash`/`seed` contribute only when
/// `broadcast_aware` (the baseline schedule depends on neither).
/// `inject` contributes only when enabled (the classic flow keeps its
/// pre-injection keys), keyed by content so distinct boundary sets never
/// share a cached schedule.
pub(crate) fn schedule_key(
    front_end: u64,
    clock_ns: f64,
    broadcast_aware: bool,
    device_hash: u64,
    seed: u64,
    inject: &crate::options::RegisterInjection,
) -> u64 {
    combine(&[
        front_end,
        clock_ns.to_bits(),
        u64::from(broadcast_aware),
        if broadcast_aware { device_hash } else { 0 },
        if broadcast_aware { seed } else { 0 },
        if inject.is_enabled() {
            hash_debug(inject)
        } else {
            0
        },
    ])
}

/// Hit/miss totals across all stages of a session's cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Artifact requests served from the cache.
    pub hits: u64,
    /// Artifact requests that had to build.
    pub misses: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; 1.0 for an untouched cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Per-stage hit/miss totals of a session's cache, so sweeps (and the
/// DSE driver) can see exactly how much front-end vs schedule work a
/// variant batch actually recomputed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageCacheStats {
    /// Front-end (verify/split/unroll/DCE) artifact requests.
    pub front_end: CacheStats,
    /// Schedule artifact requests.
    pub schedule: CacheStats,
}

impl StageCacheStats {
    /// Both stages summed (the legacy single-number view).
    pub fn total(&self) -> CacheStats {
        CacheStats {
            hits: self.front_end.hits + self.schedule.hits,
            misses: self.front_end.misses + self.schedule.misses,
        }
    }
}

/// One stage's keyed artifact store.
struct StageCache<T> {
    map: Mutex<HashMap<u64, Arc<T>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<T> Default for StageCache<T> {
    fn default() -> Self {
        StageCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl<T> StageCache<T> {
    /// Returns the artifact for `key`, building it on a miss. The lock is
    /// dropped while `build` runs so concurrent flows only serialize on
    /// the map, not on the work; if two flows race on one key, the first
    /// insert wins (builds are deterministic per key, so either is
    /// correct). The `bool` is true on a hit.
    fn get_or_build(&self, key: u64, build: impl FnOnce() -> T) -> (Arc<T>, bool) {
        if let Some(found) = self.map.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(found), true);
        }
        let built = Arc::new(build());
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.lock().unwrap();
        let kept = Arc::clone(map.entry(key).or_insert(built));
        (kept, false)
    }

    /// Inserts an already-built artifact under an extra key (no stats) —
    /// used when one build is known valid for two keys, e.g. an identity
    /// dataflow split equals the unsplit front-end.
    fn seed(&self, key: u64, artifact: Arc<T>) {
        self.map.lock().unwrap().entry(key).or_insert(artifact);
    }
}

/// The session-lifetime artifact cache.
#[derive(Default)]
pub(crate) struct ArtifactCache {
    front_ends: StageCache<FrontEndArtifact>,
    schedules: StageCache<ScheduleArtifact>,
}

impl ArtifactCache {
    pub(crate) fn front_end(
        &self,
        key: u64,
        build: impl FnOnce() -> FrontEndArtifact,
    ) -> (Arc<FrontEndArtifact>, bool) {
        self.front_ends.get_or_build(key, build)
    }

    pub(crate) fn seed_front_end(&self, key: u64, artifact: Arc<FrontEndArtifact>) {
        self.front_ends.seed(key, artifact);
    }

    pub(crate) fn schedule(
        &self,
        key: u64,
        build: impl FnOnce() -> ScheduleArtifact,
    ) -> (Arc<ScheduleArtifact>, bool) {
        self.schedules.get_or_build(key, build)
    }

    pub(crate) fn stats(&self) -> CacheStats {
        self.stats_by_stage().total()
    }

    pub(crate) fn stats_by_stage(&self) -> StageCacheStats {
        StageCacheStats {
            front_end: CacheStats {
                hits: self.front_ends.hits.load(Ordering::Relaxed),
                misses: self.front_ends.misses.load(Ordering::Relaxed),
            },
            schedule: CacheStats {
                hits: self.schedules.hits.load(Ordering::Relaxed),
                misses: self.schedules.misses.load(Ordering::Relaxed),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_content_sensitive() {
        assert_eq!(hash_debug(&(1u32, "a")), hash_debug(&(1u32, "a")));
        assert_ne!(hash_debug(&(1u32, "a")), hash_debug(&(2u32, "a")));
        assert_ne!(combine(&[1, 2]), combine(&[2, 1]), "order must matter");
    }

    #[test]
    fn schedule_key_ignores_device_and_seed_without_ba() {
        use crate::options::RegisterInjection;
        let off = RegisterInjection::Off;
        let k = |dev, seed| schedule_key(7, 3.3, false, dev, seed, &off);
        assert_eq!(k(1, 10), k(2, 20));
        let ba = |dev, seed| schedule_key(7, 3.3, true, dev, seed, &off);
        assert_ne!(ba(1, 10), ba(2, 10));
        assert_ne!(ba(1, 10), ba(1, 20));
        assert_ne!(k(1, 10), ba(1, 10));
    }

    #[test]
    fn schedule_key_distinguishes_injection_boundary_sets() {
        use crate::options::RegisterInjection;
        let k = |inject: &RegisterInjection| schedule_key(7, 3.3, true, 1, 10, inject);
        let off = k(&RegisterInjection::Off);
        let one = k(&RegisterInjection::at(vec![1]));
        let two = k(&RegisterInjection::at(vec![1, 2]));
        assert_ne!(off, one, "injected schedules must never hit Off's cache");
        assert_ne!(one, two, "distinct boundary sets must key apart");
        // Canonicalization: order and duplicates collapse to one key.
        assert_eq!(two, k(&RegisterInjection::at(vec![2, 1, 2])));
    }

    #[test]
    fn random_front_end_inputs_never_collide() {
        // 200 fuzzed designs × both split settings → 400 front-end keys.
        // FNV-1a over the debug form must keep them all distinct: a
        // collision would silently serve one design's unroll to another.
        let mut keys = std::collections::HashSet::new();
        let mut hashes = std::collections::HashSet::new();
        for seed in 0..200u64 {
            let design = hlsb_sim::random_design(seed);
            let h = hash_debug(&design);
            assert!(hashes.insert(h), "design hash collision at seed {seed}");
            for split in [false, true] {
                assert!(
                    keys.insert(front_end_key(h, split)),
                    "front-end key collision at seed {seed}, split {split}"
                );
            }
        }
    }

    #[test]
    fn clock_sweep_variants_share_front_end_but_not_schedule_keys() {
        // The clock-independent keying rule: sweeping the clock over one
        // design must reuse the front-end artifact while producing a
        // distinct schedule key per clock.
        let design = hlsb_sim::random_design(1);
        let h = hash_debug(&design);
        for split in [false, true] {
            let fe = front_end_key(h, split);
            let mut sched_keys = std::collections::HashSet::new();
            for clock_ns in [2.0f64, 3.0, 3.33, 5.0] {
                // front_end_key takes no clock at all — the shared key is
                // the same `fe` for every sweep point by construction.
                for ba in [false, true] {
                    let off = crate::options::RegisterInjection::Off;
                    sched_keys.insert(schedule_key(fe, clock_ns, ba, 7, 3, &off));
                }
            }
            assert_eq!(sched_keys.len(), 8, "schedules must key per clock");
        }
    }

    #[test]
    fn stage_cache_hits_and_seeding() {
        let cache: StageCache<u32> = StageCache::default();
        let mut builds = 0;
        let (a, hit) = cache.get_or_build(1, || {
            builds += 1;
            42
        });
        assert!(!hit);
        let (b, hit) = cache.get_or_build(1, || {
            builds += 1;
            42
        });
        assert!(hit);
        assert_eq!(builds, 1);
        assert_eq!(*a, *b);

        cache.seed(2, a);
        let (c, hit) = cache.get_or_build(2, || {
            builds += 1;
            0
        });
        assert!(hit, "seeded key must hit");
        assert_eq!(*c, 42);
        assert_eq!(builds, 1);
        assert_eq!(cache.hits.load(Ordering::Relaxed), 2);
        assert_eq!(cache.misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn per_stage_stats_split_hits_by_stage() {
        let cache = ArtifactCache::default();
        let design = hlsb_sim::random_design(3);
        let fe = || crate::passes::front_end::run(&design, false);
        cache.front_end(1, fe);
        cache.front_end(1, fe);
        let by_stage = cache.stats_by_stage();
        assert_eq!(by_stage.front_end, CacheStats { hits: 1, misses: 1 });
        assert_eq!(by_stage.schedule, CacheStats::default());
        assert_eq!(by_stage.total(), cache.stats());
        assert!((by_stage.front_end.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(by_stage.schedule.hit_rate(), 1.0, "empty cache rate is 1");
    }
}
