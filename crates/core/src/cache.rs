//! Content-addressed stage-artifact cache.
//!
//! A [`FlowSession`](crate::FlowSession) keys each cacheable stage output
//! by a content hash of everything that stage reads: the design, the
//! options prefix that affects it, and — where relevant — the clock,
//! device and seed. Variant sweeps (same design, different option sets or
//! clocks) and the lint pre-pass then share the expensive front-end work
//! instead of re-running it per flow.
//!
//! Keying rules (see `DESIGN.md` §3):
//!
//! * **front-end** — `(design, split?)`. Clock-independent, so clock
//!   sweeps share one unroll; `split?` is the `sync_pruning` toggle.
//! * **schedule** — `(front-end key, clock, broadcast_aware?)`, plus the
//!   device and seed *only* when broadcast-aware (the calibrated tables
//!   depend on both; the baseline predicted schedule on neither).
//! * **lower / implement** — not cached: their inputs almost never repeat
//!   within a session and the netlists dominate memory.

use std::collections::HashMap;
use std::fmt::Debug;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hlsb_store::{ArtifactBackend, StageKind};

use crate::passes::{FrontEndArtifact, ScheduleArtifact};

/// 64-bit FNV-1a.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Content hash of any `Debug` value. The IR types all derive `Debug`
/// with full field coverage, so the debug rendering is a faithful (if
/// verbose) serialization — good enough for cache identity, where a
/// spurious miss only costs a rebuild.
pub(crate) fn hash_debug<T: Debug + ?Sized>(value: &T) -> u64 {
    fnv1a(format!("{value:?}").as_bytes())
}

/// Order-dependent combination of key components.
pub(crate) fn combine(parts: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &p in parts {
        for b in p.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Front-end stage key: `(design, split?)`.
pub(crate) fn front_end_key(design_hash: u64, split: bool) -> u64 {
    combine(&[design_hash, u64::from(split)])
}

/// Schedule stage key; `device_hash`/`seed` contribute only when
/// `broadcast_aware` (the baseline schedule depends on neither).
/// `inject` contributes only when enabled (the classic flow keeps its
/// pre-injection keys), keyed by content so distinct boundary sets never
/// share a cached schedule.
pub(crate) fn schedule_key(
    front_end: u64,
    clock_ns: f64,
    broadcast_aware: bool,
    device_hash: u64,
    seed: u64,
    inject: &crate::options::RegisterInjection,
) -> u64 {
    combine(&[
        front_end,
        clock_ns.to_bits(),
        u64::from(broadcast_aware),
        if broadcast_aware { device_hash } else { 0 },
        if broadcast_aware { seed } else { 0 },
        if inject.is_enabled() {
            hash_debug(inject)
        } else {
            0
        },
    ])
}

/// Where an artifact request was answered from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheHit {
    /// Served from this session's in-memory cache — no rebuild.
    Memory,
    /// Rebuilt, but the persistent store already held a matching
    /// fingerprint: a previous process built the identical artifact.
    Disk,
    /// Rebuilt, new to both the session and the store (or no store).
    Miss,
}

/// Hit/miss totals across all stages of a session's cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Artifact requests served from the in-memory cache (no rebuild).
    pub hits: u64,
    /// Artifact requests that rebuilt, but whose fingerprint the
    /// persistent store already knew — cross-process warmth
    /// ([`CacheHit::Disk`]). Always 0 without a store backend.
    pub disk_hits: u64,
    /// Artifact requests that had to build fresh.
    pub misses: u64,
}

impl CacheStats {
    /// Total artifact requests (hits + disk hits + misses).
    pub fn requests(&self) -> u64 {
        self.hits + self.disk_hits + self.misses
    }

    /// In-memory hit fraction in `[0, 1]`; 1.0 for an untouched cache.
    /// Disk hits count as rebuilds here (the work was redone; only the
    /// fingerprint was known) — they are reported separately.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.disk_hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Per-stage hit/miss totals of a session's cache, so sweeps (and the
/// DSE driver) can see exactly how much front-end vs schedule work a
/// variant batch actually recomputed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageCacheStats {
    /// Front-end (verify/split/unroll/DCE) artifact requests.
    pub front_end: CacheStats,
    /// Schedule artifact requests.
    pub schedule: CacheStats,
}

impl StageCacheStats {
    /// Both stages summed (the legacy single-number view).
    pub fn total(&self) -> CacheStats {
        CacheStats {
            hits: self.front_end.hits + self.schedule.hits,
            disk_hits: self.front_end.disk_hits + self.schedule.disk_hits,
            misses: self.front_end.misses + self.schedule.misses,
        }
    }
}

/// One stage's keyed artifact store.
struct StageCache<T> {
    map: Mutex<HashMap<u64, Arc<T>>>,
    hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
}

impl<T> Default for StageCache<T> {
    fn default() -> Self {
        StageCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl<T: Debug> StageCache<T> {
    /// Returns the artifact for `key`, building it on a miss. The lock is
    /// dropped while `build` runs so concurrent flows only serialize on
    /// the map, not on the work; if two flows race on one key, the first
    /// insert wins (builds are deterministic per key, so either is
    /// correct).
    ///
    /// With a persistent `backend`, an in-memory miss consults the store
    /// after the rebuild: a matching stored fingerprint classifies the
    /// request as [`CacheHit::Disk`] (another process already built the
    /// identical artifact); otherwise the fresh fingerprint is published
    /// and the request is a [`CacheHit::Miss`]. A *mismatched* stored
    /// fingerprint — a supposedly pure build that differed across
    /// processes — is counted as a miss and re-published, so the store's
    /// later-wins rule converges on this build and the divergence stays
    /// visible as a miss on a warm store.
    fn get_or_build(
        &self,
        key: u64,
        stage: StageKind,
        backend: Option<&dyn ArtifactBackend>,
        build: impl FnOnce() -> T,
    ) -> (Arc<T>, CacheHit) {
        if let Some(found) = self.map.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(found), CacheHit::Memory);
        }
        let started = std::time::Instant::now();
        let built = Arc::new(build());
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let hit = match backend {
            Some(store) => {
                let fingerprint = hash_debug(&*built);
                match store.lookup(stage, key) {
                    Some(stored) if stored == fingerprint => {
                        self.disk_hits.fetch_add(1, Ordering::Relaxed);
                        CacheHit::Disk
                    }
                    _ => {
                        store.publish(stage, key, fingerprint, wall_ms);
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        CacheHit::Miss
                    }
                }
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                CacheHit::Miss
            }
        };
        let mut map = self.map.lock().unwrap();
        let kept = Arc::clone(map.entry(key).or_insert(built));
        (kept, hit)
    }

    /// Inserts an already-built artifact under an extra key (no stats) —
    /// used when one build is known valid for two keys, e.g. an identity
    /// dataflow split equals the unsplit front-end.
    fn seed(&self, key: u64, artifact: Arc<T>) {
        self.map.lock().unwrap().entry(key).or_insert(artifact);
    }
}

/// The session-lifetime artifact cache, optionally backed by a
/// persistent store ([`ArtifactBackend`]). The backend never changes
/// what an artifact request *returns* — builds are deterministic and the
/// in-memory map always wins — it only classifies rebuilds as
/// cross-process warm or cold and feeds fresh fingerprints back.
#[derive(Default)]
pub(crate) struct ArtifactCache {
    front_ends: StageCache<FrontEndArtifact>,
    schedules: StageCache<ScheduleArtifact>,
    backend: Option<Arc<dyn ArtifactBackend>>,
}

impl ArtifactCache {
    pub(crate) fn set_backend(&mut self, backend: Arc<dyn ArtifactBackend>) {
        self.backend = Some(backend);
    }

    pub(crate) fn front_end(
        &self,
        key: u64,
        build: impl FnOnce() -> FrontEndArtifact,
    ) -> (Arc<FrontEndArtifact>, CacheHit) {
        self.front_ends
            .get_or_build(key, StageKind::FrontEnd, self.backend.as_deref(), build)
    }

    pub(crate) fn seed_front_end(&self, key: u64, artifact: Arc<FrontEndArtifact>) {
        self.front_ends.seed(key, artifact);
    }

    pub(crate) fn schedule(
        &self,
        key: u64,
        build: impl FnOnce() -> ScheduleArtifact,
    ) -> (Arc<ScheduleArtifact>, CacheHit) {
        self.schedules
            .get_or_build(key, StageKind::Schedule, self.backend.as_deref(), build)
    }

    pub(crate) fn stats(&self) -> CacheStats {
        self.stats_by_stage().total()
    }

    pub(crate) fn stats_by_stage(&self) -> StageCacheStats {
        StageCacheStats {
            front_end: CacheStats {
                hits: self.front_ends.hits.load(Ordering::Relaxed),
                disk_hits: self.front_ends.disk_hits.load(Ordering::Relaxed),
                misses: self.front_ends.misses.load(Ordering::Relaxed),
            },
            schedule: CacheStats {
                hits: self.schedules.hits.load(Ordering::Relaxed),
                disk_hits: self.schedules.disk_hits.load(Ordering::Relaxed),
                misses: self.schedules.misses.load(Ordering::Relaxed),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_content_sensitive() {
        assert_eq!(hash_debug(&(1u32, "a")), hash_debug(&(1u32, "a")));
        assert_ne!(hash_debug(&(1u32, "a")), hash_debug(&(2u32, "a")));
        assert_ne!(combine(&[1, 2]), combine(&[2, 1]), "order must matter");
    }

    #[test]
    fn schedule_key_ignores_device_and_seed_without_ba() {
        use crate::options::RegisterInjection;
        let off = RegisterInjection::Off;
        let k = |dev, seed| schedule_key(7, 3.3, false, dev, seed, &off);
        assert_eq!(k(1, 10), k(2, 20));
        let ba = |dev, seed| schedule_key(7, 3.3, true, dev, seed, &off);
        assert_ne!(ba(1, 10), ba(2, 10));
        assert_ne!(ba(1, 10), ba(1, 20));
        assert_ne!(k(1, 10), ba(1, 10));
    }

    #[test]
    fn schedule_key_distinguishes_injection_boundary_sets() {
        use crate::options::RegisterInjection;
        let k = |inject: &RegisterInjection| schedule_key(7, 3.3, true, 1, 10, inject);
        let off = k(&RegisterInjection::Off);
        let one = k(&RegisterInjection::at(vec![1]));
        let two = k(&RegisterInjection::at(vec![1, 2]));
        assert_ne!(off, one, "injected schedules must never hit Off's cache");
        assert_ne!(one, two, "distinct boundary sets must key apart");
        // Canonicalization: order and duplicates collapse to one key.
        assert_eq!(two, k(&RegisterInjection::at(vec![2, 1, 2])));
    }

    #[test]
    fn random_front_end_inputs_never_collide() {
        // 200 fuzzed designs × both split settings → 400 front-end keys.
        // FNV-1a over the debug form must keep them all distinct: a
        // collision would silently serve one design's unroll to another.
        let mut keys = std::collections::HashSet::new();
        let mut hashes = std::collections::HashSet::new();
        for seed in 0..200u64 {
            let design = hlsb_sim::random_design(seed);
            let h = hash_debug(&design);
            assert!(hashes.insert(h), "design hash collision at seed {seed}");
            for split in [false, true] {
                assert!(
                    keys.insert(front_end_key(h, split)),
                    "front-end key collision at seed {seed}, split {split}"
                );
            }
        }
    }

    #[test]
    fn clock_sweep_variants_share_front_end_but_not_schedule_keys() {
        // The clock-independent keying rule: sweeping the clock over one
        // design must reuse the front-end artifact while producing a
        // distinct schedule key per clock.
        let design = hlsb_sim::random_design(1);
        let h = hash_debug(&design);
        for split in [false, true] {
            let fe = front_end_key(h, split);
            let mut sched_keys = std::collections::HashSet::new();
            for clock_ns in [2.0f64, 3.0, 3.33, 5.0] {
                // front_end_key takes no clock at all — the shared key is
                // the same `fe` for every sweep point by construction.
                for ba in [false, true] {
                    let off = crate::options::RegisterInjection::Off;
                    sched_keys.insert(schedule_key(fe, clock_ns, ba, 7, 3, &off));
                }
            }
            assert_eq!(sched_keys.len(), 8, "schedules must key per clock");
        }
    }

    #[test]
    fn stage_cache_hits_and_seeding() {
        let cache: StageCache<u32> = StageCache::default();
        let mut builds = 0;
        let (a, hit) = cache.get_or_build(1, StageKind::FrontEnd, None, || {
            builds += 1;
            42
        });
        assert_eq!(hit, CacheHit::Miss);
        let (b, hit) = cache.get_or_build(1, StageKind::FrontEnd, None, || {
            builds += 1;
            42
        });
        assert_eq!(hit, CacheHit::Memory);
        assert_eq!(builds, 1);
        assert_eq!(*a, *b);

        cache.seed(2, a);
        let (c, hit) = cache.get_or_build(2, StageKind::FrontEnd, None, || {
            builds += 1;
            0
        });
        assert_eq!(hit, CacheHit::Memory, "seeded key must hit");
        assert_eq!(*c, 42);
        assert_eq!(builds, 1);
        assert_eq!(cache.hits.load(Ordering::Relaxed), 2);
        assert_eq!(cache.misses.load(Ordering::Relaxed), 1);
        assert_eq!(cache.disk_hits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn per_stage_stats_split_hits_by_stage() {
        let cache = ArtifactCache::default();
        let design = hlsb_sim::random_design(3);
        let fe = || crate::passes::front_end::run(&design, false);
        cache.front_end(1, fe);
        cache.front_end(1, fe);
        let by_stage = cache.stats_by_stage();
        assert_eq!(
            by_stage.front_end,
            CacheStats {
                hits: 1,
                disk_hits: 0,
                misses: 1
            }
        );
        assert_eq!(by_stage.schedule, CacheStats::default());
        assert_eq!(by_stage.total(), cache.stats());
        assert!((by_stage.front_end.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(by_stage.schedule.hit_rate(), 1.0, "empty cache rate is 1");
    }

    #[test]
    fn disk_backend_classifies_rebuilds_and_audits_mismatches() {
        let design = hlsb_sim::random_design(5);
        let store: Arc<hlsb_store::ArtifactStore> =
            Arc::new(hlsb_store::ArtifactStore::in_memory());

        // Process 1: cold store → every rebuild is a Miss and publishes.
        let mut cache = ArtifactCache::default();
        cache.set_backend(Arc::clone(&store) as Arc<dyn ArtifactBackend>);
        let fe = || crate::passes::front_end::run(&design, false);
        let (built, hit) = cache.front_end(1, fe);
        assert_eq!(hit, CacheHit::Miss);
        let published = store.lookup(StageKind::FrontEnd, 1).expect("published");
        assert_eq!(published, hash_debug(&*built));
        // Same process, same key: the in-memory map answers.
        assert_eq!(cache.front_end(1, fe).1, CacheHit::Memory);

        // Process 2 (fresh cache, shared store): the rebuild matches the
        // stored fingerprint → Disk.
        let mut cache2 = ArtifactCache::default();
        cache2.set_backend(Arc::clone(&store) as Arc<dyn ArtifactBackend>);
        assert_eq!(cache2.front_end(1, fe).1, CacheHit::Disk);
        assert_eq!(cache2.stats_by_stage().front_end.disk_hits, 1);
        assert_eq!(cache2.stats_by_stage().front_end.misses, 0);

        // A corrupted fingerprint is a mismatch: classified Miss, and the
        // correct fingerprint is re-published (later wins) so the next
        // process sees Disk again.
        store.publish(StageKind::FrontEnd, 1, 0xBAD, 0.0);
        let mut cache3 = ArtifactCache::default();
        cache3.set_backend(Arc::clone(&store) as Arc<dyn ArtifactBackend>);
        assert_eq!(cache3.front_end(1, fe).1, CacheHit::Miss);
        assert_eq!(store.lookup(StageKind::FrontEnd, 1), Some(published));
        let mut cache4 = ArtifactCache::default();
        cache4.set_backend(store as Arc<dyn ArtifactBackend>);
        assert_eq!(cache4.front_end(1, fe).1, CacheHit::Disk);
    }
}
