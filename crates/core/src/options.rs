//! Flow options.

/// Which of the paper's optimizations the flow applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptimizationOptions {
    /// Broadcast-aware scheduling (§4.1): calibrated delays + register
    /// insertion + memory-access pipelining.
    pub broadcast_aware: bool,
    /// Synchronization pruning (§4.2): dataflow loop splitting and
    /// longest-latency-only waits.
    pub sync_pruning: bool,
    /// Skid-buffer-based pipeline control (§4.3).
    pub skid_buffer: bool,
    /// Min-area multi-level skid buffers (DP split). Only meaningful with
    /// `skid_buffer`.
    pub min_area_skid: bool,
}

impl OptimizationOptions {
    /// The paper's baseline: everything off (stock HLS behaviour).
    pub fn none() -> Self {
        OptimizationOptions::default()
    }

    /// All optimizations on (the paper's "Opt" columns).
    pub fn all() -> Self {
        OptimizationOptions {
            broadcast_aware: true,
            sync_pruning: true,
            skid_buffer: true,
            min_area_skid: true,
        }
    }

    /// Only the data-broadcast optimization (Table 3's "Opt. Data" row).
    pub fn data_only() -> Self {
        OptimizationOptions {
            broadcast_aware: true,
            ..OptimizationOptions::default()
        }
    }

    /// Skid control without the min-area split (Table 2's "Skid Buffer").
    pub fn skid_plain() -> Self {
        OptimizationOptions {
            skid_buffer: true,
            ..OptimizationOptions::default()
        }
    }
}

/// Placement effort (trade runtime for quality; results stay
/// deterministic for a fixed seed and effort).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlaceEffort {
    /// Reduced annealing for tests and quick iterations.
    Fast,
    /// Default annealing.
    #[default]
    Normal,
}

/// Island partitioning of the implement stage.
///
/// With partitioning on, the netlist is cut along its dataflow seams
/// (inter-kernel FIFOs), every island is annealed independently in a
/// reserved device region, and inter-island nets are registered
/// (`hlsb-place::partition`). Islands place in parallel, yet the result
/// is a pure function of `(netlist, seed, partition)` — never of the
/// worker thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Partitioning {
    /// Flat placement: one annealer over the whole device (the classic
    /// flow, bit-identical to pre-partitioning releases).
    #[default]
    Off,
    /// Island count chosen from netlist size and device geometry
    /// (`hlsb_place::auto_islands`); small designs stay flat.
    Auto,
    /// Exactly this many islands (clamped to what the device can host;
    /// `0` and `1` mean flat).
    Fixed(u32),
}

impl Partitioning {
    /// Whether partitioning is enabled at all (`Fixed(0)` and `Fixed(1)`
    /// degenerate to flat placement).
    pub fn is_enabled(self) -> bool {
        match self {
            Partitioning::Off => false,
            Partitioning::Auto => true,
            Partitioning::Fixed(k) => k >= 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert!(!OptimizationOptions::none().broadcast_aware);
        let all = OptimizationOptions::all();
        assert!(all.broadcast_aware && all.sync_pruning && all.skid_buffer && all.min_area_skid);
        assert!(OptimizationOptions::data_only().broadcast_aware);
        assert!(!OptimizationOptions::data_only().skid_buffer);
        assert!(OptimizationOptions::skid_plain().skid_buffer);
        assert!(!OptimizationOptions::skid_plain().min_area_skid);
    }
}
