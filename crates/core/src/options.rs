//! Flow options.

/// Which of the paper's optimizations the flow applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptimizationOptions {
    /// Broadcast-aware scheduling (§4.1): calibrated delays + register
    /// insertion + memory-access pipelining.
    pub broadcast_aware: bool,
    /// Synchronization pruning (§4.2): dataflow loop splitting and
    /// longest-latency-only waits.
    pub sync_pruning: bool,
    /// Skid-buffer-based pipeline control (§4.3).
    pub skid_buffer: bool,
    /// Min-area multi-level skid buffers (DP split). Only meaningful with
    /// `skid_buffer`.
    pub min_area_skid: bool,
}

impl OptimizationOptions {
    /// The paper's baseline: everything off (stock HLS behaviour).
    pub fn none() -> Self {
        OptimizationOptions::default()
    }

    /// All optimizations on (the paper's "Opt" columns).
    pub fn all() -> Self {
        OptimizationOptions {
            broadcast_aware: true,
            sync_pruning: true,
            skid_buffer: true,
            min_area_skid: true,
        }
    }

    /// Only the data-broadcast optimization (Table 3's "Opt. Data" row).
    pub fn data_only() -> Self {
        OptimizationOptions {
            broadcast_aware: true,
            ..OptimizationOptions::default()
        }
    }

    /// Skid control without the min-area split (Table 2's "Skid Buffer").
    pub fn skid_plain() -> Self {
        OptimizationOptions {
            skid_buffer: true,
            ..OptimizationOptions::default()
        }
    }
}

/// Placement effort (trade runtime for quality; results stay
/// deterministic for a fixed seed and effort).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlaceEffort {
    /// Reduced annealing for tests and quick iterations.
    Fast,
    /// Default annealing.
    #[default]
    Normal,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert!(!OptimizationOptions::none().broadcast_aware);
        let all = OptimizationOptions::all();
        assert!(all.broadcast_aware && all.sync_pruning && all.skid_buffer && all.min_area_skid);
        assert!(OptimizationOptions::data_only().broadcast_aware);
        assert!(!OptimizationOptions::data_only().skid_buffer);
        assert!(OptimizationOptions::skid_plain().skid_buffer);
        assert!(!OptimizationOptions::skid_plain().min_area_skid);
    }
}
