//! Flow options.

/// Which of the paper's optimizations the flow applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptimizationOptions {
    /// Broadcast-aware scheduling (§4.1): calibrated delays + register
    /// insertion + memory-access pipelining.
    pub broadcast_aware: bool,
    /// Synchronization pruning (§4.2): dataflow loop splitting and
    /// longest-latency-only waits.
    pub sync_pruning: bool,
    /// Skid-buffer-based pipeline control (§4.3).
    pub skid_buffer: bool,
    /// Min-area multi-level skid buffers (DP split). Only meaningful with
    /// `skid_buffer`.
    pub min_area_skid: bool,
}

impl OptimizationOptions {
    /// The paper's baseline: everything off (stock HLS behaviour).
    pub fn none() -> Self {
        OptimizationOptions::default()
    }

    /// All optimizations on (the paper's "Opt" columns).
    pub fn all() -> Self {
        OptimizationOptions {
            broadcast_aware: true,
            sync_pruning: true,
            skid_buffer: true,
            min_area_skid: true,
        }
    }

    /// Only the data-broadcast optimization (Table 3's "Opt. Data" row).
    pub fn data_only() -> Self {
        OptimizationOptions {
            broadcast_aware: true,
            ..OptimizationOptions::default()
        }
    }

    /// Skid control without the min-area split (Table 2's "Skid Buffer").
    pub fn skid_plain() -> Self {
        OptimizationOptions {
            skid_buffer: true,
            ..OptimizationOptions::default()
        }
    }
}

/// Forced pipeline-register injection at named stage boundaries.
///
/// Where [`OptimizationOptions::broadcast_aware`] inserts register
/// modules *reactively* (only where the calibrated model proves a chain
/// violates the budget), this knob forces them *proactively*: every
/// value produced in a named boundary cycle of the pre-injection
/// schedule and consumed combinationally in that same cycle is routed
/// through an extra `Reg` module (`hlsb_sched::inject_registers`). The
/// pipeline gets deeper — the extra latency is real, reported by probes
/// and visible to the timed simulator — in exchange for shorter
/// combinational chains after lowering, which is what the closed-loop
/// Fmax explorer (`hlsb-explore`) trades off against the clock target.
///
/// Boundaries are cycle indices of the pre-injection schedule. A
/// boundary that names a stage no loop of the design has is a
/// configuration error ([`FlowError::BadParameter`]); a boundary that
/// exists but crosses no combinational chain is a no-op.
///
/// [`FlowError::BadParameter`]: crate::FlowError::BadParameter
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum RegisterInjection {
    /// No forced registers (the classic flow).
    #[default]
    Off,
    /// Force a register after every chain source alive at each of these
    /// stage boundaries (sorted, deduplicated cycle indices).
    At(Vec<u32>),
}

impl RegisterInjection {
    /// Injection at the given boundaries, canonicalized: sorted,
    /// deduplicated, and collapsed to [`RegisterInjection::Off`] when
    /// empty — so equal configurations always hash equally in
    /// [`Flow::config_key`](crate::Flow::config_key).
    pub fn at(mut boundaries: Vec<u32>) -> Self {
        boundaries.sort_unstable();
        boundaries.dedup();
        if boundaries.is_empty() {
            RegisterInjection::Off
        } else {
            RegisterInjection::At(boundaries)
        }
    }

    /// The requested boundaries (empty when off).
    pub fn boundaries(&self) -> &[u32] {
        match self {
            RegisterInjection::Off => &[],
            RegisterInjection::At(b) => b,
        }
    }

    /// Whether any boundary is requested.
    pub fn is_enabled(&self) -> bool {
        !self.boundaries().is_empty()
    }

    /// Compact label for reports: `off` or `r1.3` (boundaries joined by
    /// `.`).
    pub fn label(&self) -> String {
        if self.is_enabled() {
            let parts: Vec<String> = self.boundaries().iter().map(u32::to_string).collect();
            format!("r{}", parts.join("."))
        } else {
            "off".to_string()
        }
    }
}

/// Placement effort (trade runtime for quality; results stay
/// deterministic for a fixed seed and effort).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlaceEffort {
    /// Reduced annealing for tests and quick iterations.
    Fast,
    /// Default annealing.
    #[default]
    Normal,
}

/// Island partitioning of the implement stage.
///
/// With partitioning on, the netlist is cut along its dataflow seams
/// (inter-kernel FIFOs), every island is annealed independently in a
/// reserved device region, and inter-island nets are registered
/// (`hlsb-place::partition`). Islands place in parallel, yet the result
/// is a pure function of `(netlist, seed, partition)` — never of the
/// worker thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Partitioning {
    /// Flat placement: one annealer over the whole device (the classic
    /// flow, bit-identical to pre-partitioning releases).
    #[default]
    Off,
    /// Island count chosen from netlist size and device geometry
    /// (`hlsb_place::auto_islands`); small designs stay flat.
    Auto,
    /// Exactly this many islands (clamped to what the device can host;
    /// `0` and `1` mean flat).
    Fixed(u32),
}

impl Partitioning {
    /// Whether partitioning is enabled at all (`Fixed(0)` and `Fixed(1)`
    /// degenerate to flat placement).
    pub fn is_enabled(self) -> bool {
        match self {
            Partitioning::Off => false,
            Partitioning::Auto => true,
            Partitioning::Fixed(k) => k >= 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injection_canonicalizes() {
        assert_eq!(RegisterInjection::at(vec![]), RegisterInjection::Off);
        assert_eq!(
            RegisterInjection::at(vec![3, 1, 3]),
            RegisterInjection::At(vec![1, 3])
        );
        assert_eq!(RegisterInjection::at(vec![3, 1]).label(), "r1.3");
        assert_eq!(RegisterInjection::Off.label(), "off");
        assert!(!RegisterInjection::Off.is_enabled());
        assert_eq!(RegisterInjection::at(vec![2]).boundaries(), &[2]);
    }

    #[test]
    fn presets() {
        assert!(!OptimizationOptions::none().broadcast_aware);
        let all = OptimizationOptions::all();
        assert!(all.broadcast_aware && all.sync_pruning && all.skid_buffer && all.min_area_skid);
        assert!(OptimizationOptions::data_only().broadcast_aware);
        assert!(!OptimizationOptions::data_only().skid_buffer);
        assert!(OptimizationOptions::skid_plain().skid_buffer);
        assert!(!OptimizationOptions::skid_plain().min_area_skid);
    }
}
