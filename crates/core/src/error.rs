//! Flow errors.

use hlsb_ir::IrError;
use hlsb_netlist::NetlistError;
use std::error::Error;
use std::fmt;

/// An error produced by [`Flow::run`](crate::flow::Flow::run).
#[derive(Debug)]
pub enum FlowError {
    /// The input design violates IR invariants.
    InvalidIr(IrError),
    /// RTL generation produced an inconsistent netlist (internal error).
    InvalidNetlist(NetlistError),
    /// The design does not fit on the selected device.
    DoesNotFit {
        /// Explanation (which resource overflowed).
        what: String,
    },
    /// A nonsensical parameter (e.g. non-positive clock).
    BadParameter {
        /// Explanation.
        what: String,
    },
    /// The static verifier ([`hlsb_verify`]) found `Error`-severity
    /// defects and the flow ran with
    /// [`Flow::verify`](crate::Flow::verify) enabled. The boxed report
    /// carries every finding (renderable as table/JSONL/SARIF).
    VerifyRejected {
        /// The full verify report, worst findings first.
        report: Box<hlsb_findings::Report>,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::InvalidIr(e) => write!(f, "invalid design IR: {e}"),
            FlowError::InvalidNetlist(e) => write!(f, "internal netlist error: {e}"),
            FlowError::DoesNotFit { what } => write!(f, "design does not fit: {what}"),
            FlowError::BadParameter { what } => write!(f, "bad parameter: {what}"),
            FlowError::VerifyRejected { report } => {
                let errors = report.count_at_least(hlsb_findings::Severity::Error);
                match report.diagnostics.iter().find(|d| !d.subject.is_empty()) {
                    Some(first) => write!(
                        f,
                        "design rejected by verify: {errors} error finding(s), first {} on {}",
                        first.rule, first.subject
                    ),
                    None => write!(f, "design rejected by verify: {errors} error finding(s)"),
                }
            }
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::InvalidIr(e) => Some(e),
            FlowError::InvalidNetlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IrError> for FlowError {
    fn from(e: IrError) -> Self {
        FlowError::InvalidIr(e)
    }
}

impl From<NetlistError> for FlowError {
    fn from(e: NetlistError) -> Self {
        FlowError::InvalidNetlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = FlowError::DoesNotFit {
            what: "BRAM 120%".into(),
        };
        assert!(e.to_string().contains("BRAM"));
        assert!(e.source().is_none());

        let ir = FlowError::from(IrError::ZeroUnroll {
            kernel: "k".into(),
            looop: "l".into(),
        });
        assert!(ir.source().is_some());
        assert!(ir.to_string().contains("invalid design IR"));
    }
}
