//! [`FlowSession`] — the staged-pipeline coordinator.
//!
//! A session owns the stage-artifact cache (the crate-private `cache`
//! module) and a
//! thread budget, and drives the passes of [`crate::passes`] for one or
//! many [`Flow`]s:
//!
//! * **Artifact reuse.** Front-end and schedule artifacts are
//!   content-addressed, so variant sweeps (option sets, clocks, seeds
//!   over one design) and the lint pre-pass share them instead of
//!   re-running unroll/schedule per flow.
//! * **Parallelism.** Placement trials within one flow, and whole flows
//!   in [`run_many`](FlowSession::run_many), run on scoped threads. The
//!   reductions are order-independent, so results are bit-identical to a
//!   single-threaded run.
//! * **Observability.** With [`Flow::trace`] enabled, every run records
//!   a hierarchical span tree ([`hlsb_trace`]) with one span per stage
//!   and per placement trial, plus *decision events* — the individual
//!   chain splits, done-signal prunings and skid-buffer placements the
//!   optimizations perform. Decision payloads are replayed from data
//!   stored in the (cached) stage artifacts, so cached and cold runs
//!   produce equal trees under [`hlsb_trace::TraceTree::normalized`]
//!   equality, and trial spans are emitted post-hoc in trial order so
//!   parallel and sequential runs do too.
//!
//! Thread budget precedence: [`FlowSession::with_threads`] > the
//! `HLSB_THREADS` environment variable > [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use hlsb_ir::verify::verify_design;
use hlsb_lint::{FrontEndSnapshot, SnapshotLoop};
use hlsb_trace::{SpanGuard, TraceTree, Tracer, Value};
use std::borrow::Cow;

use crate::cache::{self, ArtifactCache, CacheHit, CacheStats, StageCacheStats};
use crate::error::FlowError;
use crate::flow::Flow;
use crate::options::{OptimizationOptions, PlaceEffort};
use crate::passes::{self, FrontEndArtifact, ScheduleArtifact};
use crate::result::ImplementationResult;
use crate::trace::PassTrace;
use hlsb_sim::{ControlModel, IoTrace, SimOptions, Stimulus, TimedOutcome};

/// Histogram bucket bounds for the broadcast-factor distribution
/// (`metrics.histogram("broadcast-factor")`): powers of two, the natural
/// scale of unroll-driven fanout.
const BROADCAST_FACTOR_BOUNDS: [f64; 8] = [2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];

/// Histogram bucket bounds for per-trial slack (`clock period − achieved
/// period`, ns; negative = the trial missed the target).
const SLACK_NS_BOUNDS: [f64; 8] = [-4.0, -2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0];

/// Human-readable label of an option set, for the root span.
fn options_label(o: &OptimizationOptions) -> String {
    let mut parts = Vec::new();
    if o.broadcast_aware {
        parts.push("broadcast-aware");
    }
    if o.sync_pruning {
        parts.push("sync-pruning");
    }
    if o.skid_buffer {
        parts.push(if o.min_area_skid {
            "skid-min-area"
        } else {
            "skid"
        });
    }
    if parts.is_empty() {
        "none".to_string()
    } else {
        parts.join("+")
    }
}

/// Copies stage counters onto the stage span as unsigned attributes, in
/// counter order, so the [`PassTrace`] derived from the span tree
/// ([`PassTrace::from_span_tree`]) is identical to the one the
/// `PassTimer` path builds. Execution/cache-hit/store-hit counts
/// legitimately differ between cold, cached and disk-warmed runs, so
/// they are marked volatile: normalized trace equality (the cached ≡
/// cold guarantee) skips them, while the flat `PassRecord` view still
/// reports them as counters.
fn stage_counters(span: &SpanGuard, counters: &[(String, u64)]) {
    if !span.is_enabled() {
        return;
    }
    for (key, v) in counters {
        if key == "executions" || key == "cache-hits" || key == "store-hits" {
            span.attr_volatile(key, *v);
        } else {
            span.attr(key, *v);
        }
    }
}

/// Stage-local counters for a `verify.*` pass record: findings found by
/// this stage plus their severity split.
fn verify_counters(diags: &[hlsb_findings::Diagnostic]) -> Vec<(String, u64)> {
    let errors = diags
        .iter()
        .filter(|d| d.severity == hlsb_findings::Severity::Error)
        .count() as u64;
    let warnings = diags
        .iter()
        .filter(|d| d.severity == hlsb_findings::Severity::Warning)
        .count() as u64;
    vec![
        ("findings".to_string(), diags.len() as u64),
        ("errors".to_string(), errors),
        ("warnings".to_string(), warnings),
    ]
}

/// Emits one `verify.finding` event per diagnostic onto the stage span,
/// in detection order.
fn verify_events(span: &SpanGuard, diags: &[hlsb_findings::Diagnostic]) {
    if !span.is_enabled() {
        return;
    }
    for d in diags {
        let severity = d.severity.to_string();
        let location = d.location.to_string();
        hlsb_trace::event!(span, "verify.finding",
            "rule" => d.rule,
            "severity" => severity.as_str(),
            "subject" => d.subject.as_str(),
            "location" => location.as_str());
        span.count("decisions.verify.finding", 1);
    }
}

/// The output of [`FlowSession::probe`]: the cheap front half of the
/// pipeline (front-end + schedule, plus the lint pre-pass when the flow
/// enables it) without RTL lowering, placement or timing. Design-space
/// exploration uses these numbers as a low-cost fitness proxy before
/// paying for a full implementation run.
#[derive(Debug, Clone)]
pub struct ProbeOutcome {
    /// Pipeline depth of each scheduled loop, flattened in kernel-loop
    /// order.
    pub schedule_depths: Vec<u32>,
    /// Static latency estimate in cycles — the same number a full run
    /// reports in [`ImplementationResult::latency_cycles`].
    pub latency_cycles: u64,
    /// Registers inserted by broadcast-aware scheduling.
    pub inserted_regs: usize,
    /// Scheduling violations (single-op delays over the clock budget).
    pub schedule_violations: usize,
    /// Instruction count of the effective (split + unrolled) design.
    pub instructions: usize,
    /// Static broadcast lint report, when the flow enables
    /// [`Flow::lint`].
    pub lint: Option<hlsb_lint::LintReport>,
    /// Static verify report (network + schedule contracts; no lowering
    /// contracts — probes never lower), when the flow enables
    /// [`Flow::verify`]. Error findings abort the probe instead.
    pub verify: Option<hlsb_findings::Report>,
    /// Per-pass wall times and counters for this probe (front-end and
    /// schedule records mirror [`FlowSession::run_detailed`], so probes
    /// share cached artifacts with full runs).
    pub trace: PassTrace,
    /// Hierarchical span trace, when the flow enables [`Flow::trace`].
    pub span_tree: Option<TraceTree>,
}

impl ProbeOutcome {
    /// The hierarchical span trace, if the flow ran with tracing enabled.
    pub fn trace_tree(&self) -> Option<&TraceTree> {
        self.span_tree.as_ref()
    }
}

/// The output of [`FlowSession::simulate`]: the untimed golden trace, the
/// cycle-accurate outcome of the flow's *scheduled* design under the
/// flow's control model, and the pass trace of the run (front-end and
/// schedule records mirror [`FlowSession::run_detailed`], so simulation
/// shares their cached artifacts; the `simulate` record carries the
/// cycle/stall/gate counters).
#[derive(Debug, Clone)]
pub struct SimulationOutcome {
    /// Observable trace of the untimed reference evaluator.
    pub golden: IoTrace,
    /// Cycle-accurate run of the scheduled loops.
    pub timed: TimedOutcome,
    /// Per-pass wall times and counters for this simulation.
    pub trace: PassTrace,
    /// Hierarchical span trace, when the flow enables [`Flow::trace`].
    pub span_tree: Option<TraceTree>,
}

impl SimulationOutcome {
    /// Verifies the run end to end: the timed trace must equal the golden
    /// trace and the timed latency must be consistent with the schedule
    /// (see [`hlsb_sim::check_latency`]).
    ///
    /// # Errors
    ///
    /// A description of the first trace divergence or latency
    /// inconsistency.
    pub fn check(&self) -> Result<(), String> {
        if let Some(diff) = self.timed.trace.diff(&self.golden) {
            return Err(format!("timed trace diverges from golden: {diff}"));
        }
        hlsb_sim::check_latency(&self.timed)
    }

    /// The hierarchical span trace, if the flow ran with tracing enabled.
    pub fn trace_tree(&self) -> Option<&TraceTree> {
        self.span_tree.as_ref()
    }
}

/// Reusable flow-execution context: stage-artifact cache + thread budget.
///
/// One-shot [`Flow::run`] calls create a throwaway session internally;
/// create one explicitly to share front-end/schedule artifacts across a
/// sweep and to run independent flows in parallel:
///
/// ```no_run
/// use hlsb::{Flow, FlowSession, OptimizationOptions};
/// # let design = hlsb_ir::Design::new("d");
/// let session = FlowSession::new();
/// let flows = vec![
///     Flow::new(design.clone()),
///     Flow::new(design).options(OptimizationOptions::all()),
/// ];
/// let results = session.run_many(&flows);
/// ```
pub struct FlowSession {
    cache: ArtifactCache,
    threads: usize,
    /// Optional persistent run ledger: every pipeline run (including
    /// the ones `run_many` workers execute) appends one record.
    ledger: Option<Arc<hlsb_telemetry::RunLedger>>,
}

/// What the shared front half of the pipeline produces: the cached
/// front-end and schedule artifacts plus the lint report when the flow's
/// options request the pre-pass.
type StagedArtifacts = (
    Arc<FrontEndArtifact>,
    Arc<ScheduleArtifact>,
    Option<hlsb_lint::LintReport>,
);

impl Default for FlowSession {
    fn default() -> Self {
        FlowSession::new()
    }
}

fn default_threads() -> usize {
    if let Ok(v) = std::env::var("HLSB_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    thread::available_parallelism().map_or(1, |n| n.get())
}

impl FlowSession {
    /// A fresh session with an empty cache. The thread budget comes from
    /// `HLSB_THREADS` when set (and parseable), otherwise from
    /// [`std::thread::available_parallelism`].
    pub fn new() -> Self {
        FlowSession::with_threads(default_threads())
    }

    /// A fresh session with an explicit thread budget (clamped to ≥ 1).
    /// Overrides `HLSB_THREADS`.
    pub fn with_threads(threads: usize) -> Self {
        FlowSession {
            cache: ArtifactCache::default(),
            threads: threads.max(1),
            ledger: None,
        }
    }

    /// Attaches a persistent artifact backend (normally an
    /// [`hlsb_store::ArtifactStore`]) to the session's stage cache.
    /// The backend never changes any result — disk-backed and in-memory
    /// runs stay bit-identical — it classifies rebuilds as cross-process
    /// warm ([`CacheStats::disk_hits`], the volatile `store-hits` stage
    /// counter) and publishes fresh artifact fingerprints for other
    /// processes to audit against.
    pub fn with_backend(mut self, backend: Arc<dyn hlsb_store::ArtifactBackend>) -> Self {
        self.cache.set_backend(backend);
        self
    }

    /// Attaches a persistent run ledger
    /// ([`hlsb_telemetry::RunLedger`]): every pipeline run appends one
    /// [`hlsb_telemetry::RunRecord`] with its status, per-stage wall
    /// times and counters. Purely observational — results stay
    /// bit-identical with and without a ledger, and ledger I/O errors
    /// never fail a flow.
    pub fn with_ledger(mut self, ledger: Arc<hlsb_telemetry::RunLedger>) -> Self {
        self.ledger = Some(ledger);
        self
    }

    /// Attaches a run ledger in place (for owners that hold the session
    /// in a larger struct, e.g. the serve `JobServer`).
    pub fn set_ledger(&mut self, ledger: Arc<hlsb_telemetry::RunLedger>) {
        self.ledger = Some(ledger);
    }

    /// The session's thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Cache hit/miss totals so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Cache hit/miss totals broken down by stage (front-end vs
    /// schedule) — the sweep-level view of how much a variant batch
    /// actually recomputed.
    pub fn cache_stats_by_stage(&self) -> StageCacheStats {
        self.cache.stats_by_stage()
    }

    /// Runs one flow through the pipeline.
    ///
    /// # Errors
    ///
    /// Same as [`Flow::run`].
    pub fn run(&self, flow: &Flow) -> Result<ImplementationResult, FlowError> {
        self.run_detailed(flow).map(|(r, _, _)| r)
    }

    /// Runs one flow and also returns the final netlist and placement.
    ///
    /// # Errors
    ///
    /// Same as [`Flow::run`].
    pub fn run_detailed(
        &self,
        flow: &Flow,
    ) -> Result<
        (
            ImplementationResult,
            hlsb_netlist::Netlist,
            hlsb_place::Placement,
        ),
        FlowError,
    > {
        self.run_pipeline(flow, self.threads)
    }

    /// Runs independent flows, in parallel when the thread budget allows,
    /// returning results in input order. Flows of one design share cached
    /// front-end/schedule artifacts. When flows run concurrently, each
    /// flow's placement trials run sequentially inside it (the outer
    /// level already saturates the budget); results are bit-identical
    /// either way.
    pub fn run_many(&self, flows: &[Flow]) -> Vec<Result<ImplementationResult, FlowError>> {
        let outer = self.threads.clamp(1, flows.len().max(1));
        if outer == 1 {
            return flows
                .iter()
                .map(|f| self.run_pipeline(f, self.threads).map(|(r, _, _)| r))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let per_worker: Vec<Vec<(usize, Result<ImplementationResult, FlowError>)>> =
            thread::scope(|s| {
                let handles: Vec<_> = (0..outer)
                    .map(|_| {
                        s.spawn(|| {
                            let mut out = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= flows.len() {
                                    break;
                                }
                                let r = self.run_pipeline(&flows[i], 1).map(|(r, _, _)| r);
                                out.push((i, r));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("flow worker panicked"))
                    .collect()
            });
        let mut slots: Vec<Option<Result<ImplementationResult, FlowError>>> =
            flows.iter().map(|_| None).collect();
        for (i, r) in per_worker.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every flow produces a result"))
            .collect()
    }

    /// Opens the root `flow` span for one run and stamps the flow's
    /// configuration on it. The thread budget is volatile: it changes
    /// with `HLSB_THREADS` but never the decisions, and normalized trace
    /// equality must hold across thread counts.
    fn flow_root(&self, tracer: &Tracer, flow: &Flow, mode: &str) -> SpanGuard {
        let root = tracer.root("flow");
        if root.is_enabled() {
            root.attr("design", flow.design.name.as_str());
            root.attr("mode", mode);
            root.attr("clock-mhz", flow.clock_mhz);
            root.attr("seed", flow.seed);
            root.attr("options", options_label(&flow.options));
            root.attr(
                "effort",
                match flow.effort {
                    PlaceEffort::Fast => "fast",
                    PlaceEffort::Normal => "normal",
                },
            );
            root.attr("place-seeds", u64::from(flow.place_seeds));
            root.attr(
                "partitions",
                match flow.partitions {
                    crate::options::Partitioning::Off => "off".to_string(),
                    crate::options::Partitioning::Auto => "auto".to_string(),
                    crate::options::Partitioning::Fixed(k) => k.to_string(),
                },
            );
            root.attr("inject", flow.inject.label());
            root.attr_volatile("threads", self.threads as u64);
        }
        root
    }

    /// Simulates one flow variant instead of implementing it: runs the
    /// untimed golden evaluator over the flow's front-end output and the
    /// cycle-accurate simulator over its scheduled loops, with the flow's
    /// own optimization options mapped onto the simulation (skid-buffer
    /// options select the skid control model, `sync_pruning` the pruned
    /// wait set). Loops run at most `iters_cap` iterations each, so
    /// million-iteration benchmarks stay cheap.
    ///
    /// Front-end and schedule artifacts are the *same* cached artifacts
    /// `run`/`run_detailed` use — simulating after (or before)
    /// implementing the same flow re-runs neither stage.
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] for invalid IR or a nonsensical clock
    /// target; divergence between the timed and golden traces is not an
    /// error here — call [`SimulationOutcome::check`] for the verdict.
    pub fn simulate(
        &self,
        flow: &Flow,
        stim: &Stimulus,
        iters_cap: u64,
    ) -> Result<SimulationOutcome, FlowError> {
        if !(flow.clock_mhz.is_finite() && flow.clock_mhz > 0.0) {
            return Err(FlowError::BadParameter {
                what: format!("clock target {} MHz", flow.clock_mhz),
            });
        }
        verify_design(&flow.design)?;
        let tracer = if flow.trace {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        };
        let root = self.flow_root(&tracer, flow, "simulate");
        let mut trace = PassTrace::default();
        let (front_end, schedule, _lint) =
            self.stage_front_end_and_schedule(flow, &mut trace, &root)?;
        let design = front_end.design(&flow.design);

        // Simulate: untimed reference, then the scheduled design cycle by
        // cycle under the flow's control model.
        let timer = trace.start("simulate");
        let span = root.child("simulate");
        let golden = hlsb_sim::golden_trace(design, &front_end.unrolled, stim, iters_cap);
        let opts = SimOptions {
            control: if flow.options.skid_buffer {
                ControlModel::skid()
            } else {
                ControlModel::Stall
            },
            sync_pruning: flow.options.sync_pruning,
            iters_cap,
            ..SimOptions::default()
        };
        let timed = hlsb_sim::simulate_design(design, &schedule.loops, stim, &opts);
        let stall_cycles: u64 = timed.per_loop.iter().map(|r| r.stall_cycles).sum();
        let gated_cycles: u64 = timed.per_loop.iter().map(|r| r.gated_cycles).sum();
        let counters = vec![
            ("cycles".to_string(), timed.cycles),
            ("stall-cycles".to_string(), stall_cycles),
            ("gated-cycles".to_string(), gated_cycles),
            ("values".to_string(), golden.len() as u64),
            (
                "trace-match".to_string(),
                u64::from(timed.trace.diff(&golden).is_none()),
            ),
            ("finished".to_string(), u64::from(timed.finished)),
        ];
        stage_counters(&span, &counters);
        span.finish();
        timer.done(&mut trace, counters);
        let span_tree = if flow.trace {
            root.finish();
            let tree = tracer.take_tree();
            trace = PassTrace::from_span_tree(&tree);
            Some(tree)
        } else {
            None
        };
        Ok(SimulationOutcome {
            golden,
            timed,
            trace,
            span_tree,
        })
    }

    /// Runs only the cheap front half of the pipeline — front-end +
    /// schedule (and the lint pre-pass when the flow enables
    /// [`Flow::lint`]) — and reports schedule-derived metrics without
    /// lowering, placing or timing anything.
    ///
    /// Probes use the *same* cache keys as [`run`](FlowSession::run) and
    /// [`simulate`](FlowSession::simulate): probing a configuration and
    /// then implementing it re-runs neither stage. This is the low-cost
    /// proxy stage of design-space exploration (`hlsb-dse`): a probe
    /// costs front-end + schedule only, typically orders of magnitude
    /// less than multi-seed placement.
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] for invalid IR or a nonsensical clock
    /// target.
    pub fn probe(&self, flow: &Flow) -> Result<ProbeOutcome, FlowError> {
        if !(flow.clock_mhz.is_finite() && flow.clock_mhz > 0.0) {
            return Err(FlowError::BadParameter {
                what: format!("clock target {} MHz", flow.clock_mhz),
            });
        }
        verify_design(&flow.design)?;
        let tracer = if flow.trace {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        };
        let root = self.flow_root(&tracer, flow, "probe");
        let mut trace = PassTrace::default();
        let verify_rep = self.stage_verify_network(flow, &mut trace, &root)?;
        let (front_end, schedule, lint) =
            self.stage_front_end_and_schedule(flow, &mut trace, &root)?;
        let design = front_end.design(&flow.design);
        let verify =
            self.stage_verify_contracts(verify_rep, design, &schedule, None, &mut trace, &root)?;
        let instructions = design.kernels.iter().map(|k| k.inst_count()).sum();
        let span_tree = if flow.trace {
            root.finish();
            let tree = tracer.take_tree();
            trace = PassTrace::from_span_tree(&tree);
            Some(tree)
        } else {
            None
        };
        Ok(ProbeOutcome {
            schedule_depths: schedule.depths.clone(),
            latency_cycles: schedule.latency_cycles(design.concurrency),
            inserted_regs: schedule.inserted_regs,
            schedule_violations: schedule.violations(),
            instructions,
            lint,
            verify,
            trace,
            span_tree,
        })
    }

    /// The cached front half shared by [`run_detailed`]
    /// (via `run_pipeline`), [`simulate`](FlowSession::simulate) and
    /// [`probe`](FlowSession::probe): front-end (clock-independent key),
    /// schedule (content-keyed), and the lint pre-pass borrowing both
    /// when the flow enables it. All three entry points therefore address
    /// identical artifacts.
    ///
    /// Stage spans go under `root`; decision events are replayed from the
    /// provenance stored in the artifacts
    /// ([`FrontEndArtifact::loop_info`],
    /// [`ScheduleArtifact::loop_traces`]), so a cache hit emits the same
    /// events as the run that built the artifact.
    ///
    /// # Errors
    ///
    /// [`FlowError::BadParameter`] when the flow requests register
    /// injection at a stage boundary no loop of the design has. The
    /// verdict is recorded in the (cached) artifact, so cold and
    /// cache-hit runs of the same configuration reject identically.
    ///
    /// [`run_detailed`]: FlowSession::run_detailed
    fn stage_front_end_and_schedule(
        &self,
        flow: &Flow,
        trace: &mut PassTrace,
        root: &SpanGuard,
    ) -> Result<StagedArtifacts, FlowError> {
        let clock_ns = 1000.0 / flow.clock_mhz;

        // Tallies one artifact request: a memory hit avoided the work, a
        // disk hit redid it but the persistent store knew the fingerprint
        // (cross-process warmth), a miss was new everywhere.
        fn tally(hit: CacheHit, executions: &mut u64, hits: &mut u64, store_hits: &mut u64) {
            match hit {
                CacheHit::Memory => *hits += 1,
                CacheHit::Disk => {
                    *executions += 1;
                    *store_hits += 1;
                }
                CacheHit::Miss => *executions += 1,
            }
        }

        // Front-end (cached, clock-independent).
        let timer = trace.start("front-end");
        let span = root.child("front-end");
        let design_hash = cache::hash_debug(&flow.design);
        let fe_key = cache::front_end_key(design_hash, flow.options.sync_pruning);
        let mut executions = 0u64;
        let mut hits = 0u64;
        let mut store_hits = 0u64;
        let (front_end, hit) = self.cache.front_end(fe_key, || {
            passes::front_end::run(&flow.design, flow.options.sync_pruning)
        });
        tally(hit, &mut executions, &mut hits, &mut store_hits);
        // An identity split equals the unsplit front-end: publish the
        // artifact under the unsplit key too, so the lint pre-pass and
        // non-pruning variants of the same design share it.
        let unsplit_key = cache::front_end_key(design_hash, false);
        if flow.options.sync_pruning && !front_end.split_changed() {
            self.cache
                .seed_front_end(unsplit_key, Arc::clone(&front_end));
        }
        // The lint pre-pass analyzes the design as written (pre-split).
        let lint_front_end: Option<Arc<FrontEndArtifact>> = flow.lint.then(|| {
            if front_end.split_changed() {
                let (fe, hit) = self
                    .cache
                    .front_end(unsplit_key, || passes::front_end::run(&flow.design, false));
                tally(hit, &mut executions, &mut hits, &mut store_hits);
                fe
            } else {
                hits += 1;
                Arc::clone(&front_end)
            }
        });
        let dce_removed: u64 = front_end
            .loop_info
            .iter()
            .map(|l| l.dce_removed as u64)
            .sum();
        let counters = vec![
            ("executions".to_string(), executions),
            ("cache-hits".to_string(), hits),
            ("store-hits".to_string(), store_hits),
            ("loops-split".to_string(), front_end.loops_split as u64),
            ("dce-removed".to_string(), dce_removed),
        ];
        stage_counters(&span, &counters);
        if span.is_enabled() {
            if front_end.loops_split > 0 {
                hlsb_trace::event!(span, "front-end.split",
                    "loops-split" => front_end.loops_split as u64);
            }
            for info in &front_end.loop_info {
                if info.unroll > 1 {
                    hlsb_trace::event!(span, "front-end.unroll",
                        "kernel" => info.kernel.as_str(),
                        "loop" => info.looop.as_str(),
                        "factor" => u64::from(info.unroll),
                        "insts" => info.insts_unrolled as u64);
                }
                if info.dce_removed > 0 {
                    hlsb_trace::event!(span, "front-end.dce",
                        "kernel" => info.kernel.as_str(),
                        "loop" => info.looop.as_str(),
                        "removed" => info.dce_removed as u64);
                }
            }
        }
        span.finish();
        timer.done(trace, counters);

        // Schedule (cached). Keyed by front-end *content*: an identity
        // split shares schedules with the unsplit variants.
        let design = front_end.design(&flow.design);
        let timer = trace.start("schedule");
        let span = root.child("schedule");
        let device_hash = cache::hash_debug(&flow.device);
        let content_fe_key = if front_end.split_changed() {
            fe_key
        } else {
            unsplit_key
        };
        let mut executions = 0u64;
        let mut hits = 0u64;
        let mut store_hits = 0u64;
        let sched_key = cache::schedule_key(
            content_fe_key,
            clock_ns,
            flow.options.broadcast_aware,
            device_hash,
            flow.seed,
            &flow.inject,
        );
        let (schedule, hit) = self.cache.schedule(sched_key, || {
            passes::schedule::run(
                &front_end,
                design,
                &flow.device,
                clock_ns,
                flow.options.broadcast_aware,
                flow.seed,
                &flow.inject,
            )
        });
        tally(hit, &mut executions, &mut hits, &mut store_hits);
        // The lint baseline: the broadcast-blind schedule of the unsplit
        // design at the same clock.
        let lint_inputs: Option<(Arc<FrontEndArtifact>, Arc<ScheduleArtifact>)> = lint_front_end
            .map(|fe| {
                // The lint baseline stays broadcast-blind *and*
                // injection-blind: it models what stock HLS would build.
                let key = cache::schedule_key(
                    unsplit_key,
                    clock_ns,
                    false,
                    device_hash,
                    flow.seed,
                    &crate::options::RegisterInjection::Off,
                );
                let (baseline, hit) = self.cache.schedule(key, || {
                    passes::schedule::run(
                        &fe,
                        &flow.design,
                        &flow.device,
                        clock_ns,
                        false,
                        flow.seed,
                        &crate::options::RegisterInjection::Off,
                    )
                });
                tally(hit, &mut executions, &mut hits, &mut store_hits);
                (fe, baseline)
            });
        let splits: u64 = schedule
            .loop_traces
            .iter()
            .map(|lt| lt.splits.len() as u64)
            .sum();
        let residual: u64 = schedule
            .loop_traces
            .iter()
            .map(|lt| lt.residual as u64)
            .sum();
        let counters = vec![
            ("executions".to_string(), executions),
            ("cache-hits".to_string(), hits),
            ("store-hits".to_string(), store_hits),
            ("inserted-regs".to_string(), schedule.inserted_regs as u64),
            ("injected-regs".to_string(), schedule.injected_regs as u64),
            ("splits".to_string(), splits),
            ("residual-violations".to_string(), residual),
        ];
        stage_counters(&span, &counters);
        if span.is_enabled() {
            for lt in &schedule.loop_traces {
                for s in &lt.splits {
                    hlsb_trace::event!(span, "schedule.split",
                        "kernel" => lt.kernel.as_str(),
                        "loop" => lt.looop.as_str(),
                        "round" => s.round as u64,
                        "violator" => u64::from(s.violator.0),
                        "op" => s.op.to_string(),
                        "cut" => u64::from(s.cut.0),
                        "broadcast-factor" => s.broadcast_factor as u64,
                        "excess-ns" => s.excess_ns,
                        "calibrated-ns" => s.calibrated_ns,
                        "predicted-ns" => s.predicted_ns);
                    span.count("decisions.schedule.split", 1);
                    span.observe(
                        "broadcast-factor",
                        &BROADCAST_FACTOR_BOUNDS,
                        s.broadcast_factor as f64,
                    );
                }
                for inj in &lt.injections {
                    hlsb_trace::event!(span, "schedule.inject",
                        "kernel" => lt.kernel.as_str(),
                        "loop" => lt.looop.as_str(),
                        "boundary" => u64::from(inj.boundary),
                        "cut" => u64::from(inj.cut.0),
                        "op" => inj.op.to_string(),
                        "readers" => inj.readers as u64);
                    span.count("decisions.schedule.inject", 1);
                }
                for &(inst, stages) in &lt.mem_stages {
                    hlsb_trace::event!(span, "schedule.mem-stages",
                        "kernel" => lt.kernel.as_str(),
                        "loop" => lt.looop.as_str(),
                        "inst" => u64::from(inst),
                        "stages" => u64::from(stages));
                }
                if lt.residual > 0 {
                    hlsb_trace::event!(span, "schedule.residual",
                        "kernel" => lt.kernel.as_str(),
                        "loop" => lt.looop.as_str(),
                        "count" => lt.residual as u64);
                }
            }
        }
        span.finish();
        timer.done(trace, counters);

        // Injection at a boundary no loop of the design has is a
        // configuration error, not a silent no-op. The verdict lives in
        // the artifact, so a cache hit rejects exactly like the run that
        // built it.
        if let Some(&bad) = schedule.invalid_boundaries.first() {
            let max_stage = schedule.depths.iter().copied().max().unwrap_or(0);
            return Err(FlowError::BadParameter {
                what: format!(
                    "register-injection boundary {bad} (deepest loop has stage \
                     boundaries 0..{max_stage})"
                ),
            });
        }

        // Lint pre-pass: report-only, borrowing the front-end artifacts
        // instead of re-deriving them.
        let lint = lint_inputs.map(|(fe, baseline)| {
            let timer = trace.start("lint");
            let span = root.child("lint");
            let snapshot = FrontEndSnapshot {
                loops: fe
                    .unrolled
                    .iter()
                    .zip(&baseline.loops)
                    .map(|(kernel, scheduled)| {
                        kernel
                            .iter()
                            .zip(scheduled)
                            .map(|(unrolled, sl)| SnapshotLoop {
                                unrolled: Cow::Borrowed(unrolled),
                                schedule: Cow::Borrowed(&sl.schedule),
                            })
                            .collect()
                    })
                    .collect(),
            };
            let report = hlsb_lint::lint_with_front_end(
                &flow.design,
                &flow.device,
                hlsb_lint::LintConfig {
                    clock_mhz: flow.clock_mhz,
                    seed: flow.seed,
                    ..hlsb_lint::LintConfig::default()
                },
                snapshot,
            );
            let counters = vec![
                ("front-end-reused".to_string(), 1),
                ("diagnostics".to_string(), report.diagnostics.len() as u64),
            ];
            stage_counters(&span, &counters);
            span.finish();
            timer.done(trace, counters);
            report
        });

        Ok((front_end, schedule, lint))
    }

    /// The `verify.network` pre-gate: structural dataflow analysis
    /// ([`hlsb_verify::check_network`]) on the design *as written*,
    /// before any pipeline stage runs. Returns the open report for the
    /// contract stage to extend — or the rejection when any finding is
    /// `Error`-severity. Runs per flow, outside the artifact cache, like
    /// [`verify_design`]: a cache hit must never mask a broken network.
    fn stage_verify_network(
        &self,
        flow: &Flow,
        trace: &mut PassTrace,
        root: &SpanGuard,
    ) -> Result<Option<hlsb_findings::Report>, FlowError> {
        if !flow.verify {
            return Ok(None);
        }
        let timer = trace.start("verify.network");
        let span = root.child("verify.network");
        let mut rep = hlsb_verify::report(&flow.design.name, &flow.device.name, flow.clock_mhz);
        hlsb_verify::check_network(&flow.design, &mut rep.diagnostics);
        let counters = verify_counters(&rep.diagnostics);
        stage_counters(&span, &counters);
        verify_events(&span, &rep.diagnostics);
        span.finish();
        timer.done(trace, counters);
        rep.sort_worst_first();
        if rep.count_at_least(hlsb_findings::Severity::Error) > 0 {
            return Err(FlowError::VerifyRejected {
                report: Box::new(rep),
            });
        }
        Ok(Some(rep))
    }

    /// The `verify.contracts` audit: schedule contracts
    /// ([`hlsb_verify::check_schedule`]) on every scheduled loop, plus
    /// the lowering contracts ([`hlsb_verify::check_lower`]) when the
    /// flow lowered (probes stop at the schedule). Extends the network
    /// report; any `Error` finding rejects the flow before the expensive
    /// back-end stages run.
    fn stage_verify_contracts(
        &self,
        rep: Option<hlsb_findings::Report>,
        design: &hlsb_ir::Design,
        schedule: &ScheduleArtifact,
        lower_info: Option<&hlsb_rtlgen::LowerInfo>,
        trace: &mut PassTrace,
        root: &SpanGuard,
    ) -> Result<Option<hlsb_findings::Report>, FlowError> {
        let Some(mut rep) = rep else {
            return Ok(None);
        };
        let timer = trace.start("verify.contracts");
        let span = root.child("verify.contracts");
        let before = rep.diagnostics.len();
        let mut contracts = Vec::new();
        let mut flat = 0usize;
        for (ki, kernel) in schedule.loops.iter().enumerate() {
            let kernel_name = design
                .kernels
                .get(ki)
                .map(|k| k.name.as_str())
                .unwrap_or_default();
            for sl in kernel {
                contracts.push(hlsb_verify::LoopContract {
                    kernel: kernel_name,
                    looop: &sl.looop,
                    schedule: &sl.schedule,
                    splits: schedule
                        .loop_traces
                        .get(flat)
                        .map_or(&[][..], |lt| lt.splits.as_slice()),
                });
                flat += 1;
            }
        }
        hlsb_verify::check_schedule(&contracts, &mut rep.diagnostics);
        if let Some(info) = lower_info {
            hlsb_verify::check_lower(info, &mut rep.diagnostics);
        }
        let counters = verify_counters(&rep.diagnostics[before..]);
        stage_counters(&span, &counters);
        verify_events(&span, &rep.diagnostics[before..]);
        span.finish();
        timer.done(trace, counters);
        rep.sort_worst_first();
        if rep.count_at_least(hlsb_findings::Severity::Error) > 0 {
            return Err(FlowError::VerifyRejected {
                report: Box::new(rep),
            });
        }
        Ok(Some(rep))
    }

    /// The staged pipeline for one flow, plus the run-ledger hook.
    /// `implement_threads` caps the placement-trial parallelism
    /// (run_many sets it to 1 when flows already run concurrently).
    fn run_pipeline(
        &self,
        flow: &Flow,
        implement_threads: usize,
    ) -> Result<
        (
            ImplementationResult,
            hlsb_netlist::Netlist,
            hlsb_place::Placement,
        ),
        FlowError,
    > {
        let Some(ledger) = &self.ledger else {
            return self.run_pipeline_inner(flow, implement_threads);
        };
        let start = Instant::now();
        let out = self.run_pipeline_inner(flow, implement_threads);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let status = match &out {
            Ok(_) => "ok",
            Err(FlowError::VerifyRejected { .. }) => "rejected",
            Err(_) => "failed",
        };
        let mut rec = hlsb_telemetry::RunRecord::new(
            "flow",
            &flow.design.name,
            flow.config_key(),
            status,
            wall_ms,
        );
        if let Ok((result, _, _)) = &out {
            for pass in &result.trace.records {
                rec.add_stage(&pass.pass, pass.wall_ms);
                for (name, v) in &pass.counters {
                    rec.add_count(name, *v);
                }
            }
        }
        // Telemetry must never fail the flow; a full disk loses the
        // record, not the result.
        let _ = ledger.append(rec);
        out
    }

    fn run_pipeline_inner(
        &self,
        flow: &Flow,
        implement_threads: usize,
    ) -> Result<
        (
            ImplementationResult,
            hlsb_netlist::Netlist,
            hlsb_place::Placement,
        ),
        FlowError,
    > {
        if !(flow.clock_mhz.is_finite() && flow.clock_mhz > 0.0) {
            return Err(FlowError::BadParameter {
                what: format!("clock target {} MHz", flow.clock_mhz),
            });
        }
        // Verification runs per flow, outside the cache: a cache hit must
        // never mask an invalid design.
        verify_design(&flow.design)?;
        let tracer = if flow.trace {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        };
        let root = self.flow_root(&tracer, flow, "implement");
        let mut trace = PassTrace::default();
        let verify_rep = self.stage_verify_network(flow, &mut trace, &root)?;
        let (front_end, schedule, lint) =
            self.stage_front_end_and_schedule(flow, &mut trace, &root)?;
        let design = front_end.design(&flow.design);

        // Lower: RTL generation + capacity check.
        let timer = trace.start("lower");
        let span = root.child("lower");
        let lowered = passes::lower::run(
            design,
            &schedule,
            &flow.options,
            flow.partitions,
            &flow.device,
        )?;
        let sync_pruned = lowered
            .info
            .sync_decisions
            .iter()
            .filter(|d| !d.waited)
            .count();
        let counters = vec![
            ("cells".to_string(), lowered.netlist.cell_count() as u64),
            (
                "skid-cuts".to_string(),
                lowered.info.skid_decisions.len() as u64,
            ),
            ("sync-pruned".to_string(), sync_pruned as u64),
        ];
        stage_counters(&span, &counters);
        if span.is_enabled() {
            for d in &lowered.info.skid_decisions {
                hlsb_trace::event!(span, "skid.buffer",
                    "loop" => d.looop.as_str(),
                    "cut-stage" => d.cut_stage as u64,
                    "depth-slots" => d.depth_slots,
                    "width-bits" => d.width_bits,
                    "bits" => d.bits,
                    "storage" => d.storage.label(),
                    "min-area" => d.min_area);
                span.count("decisions.skid.buffer", 1);
            }
            for d in &lowered.info.sync_decisions {
                let mut attrs: Vec<(&str, Value)> = vec![
                    ("loop", d.looop.as_str().into()),
                    ("module", d.module.as_str().into()),
                ];
                if let Some(l) = d.latency {
                    attrs.push(("latency", l.into()));
                }
                if let Some(c) = d.cover_latency {
                    attrs.push(("cover-latency", c.into()));
                }
                if d.waited {
                    span.event("sync.keep", attrs);
                    span.count("decisions.sync.keep", 1);
                } else {
                    span.event("sync.prune", attrs);
                    span.count("decisions.sync.prune", 1);
                }
            }
            // The capacity check the lower pass just passed, as evidence:
            // used vs available per resource class.
            let stats = lowered.netlist.stats();
            let res = flow.device.resources;
            for (resource, used, cap) in [
                ("lut", stats.luts, res.luts),
                ("ff", stats.ffs, res.ffs),
                ("bram", stats.brams, res.brams),
                ("dsp", stats.dsps, res.dsps),
            ] {
                hlsb_trace::event!(span, "lower.capacity",
                    "resource" => resource,
                    "used" => used,
                    "cap" => cap);
            }
        }
        span.finish();
        timer.done(&mut trace, counters);

        // Contract audit, before paying for placement: a broken
        // schedule/lowering contract rejects the flow here.
        let verify = self.stage_verify_contracts(
            verify_rep,
            design,
            &schedule,
            Some(&lowered.info),
            &mut trace,
            &root,
        )?;

        // Implement: multi-seed place/optimize, best timing wins.
        let timer = trace.start("implement");
        let span = root.child("implement");
        let (imp, trials, winner, partition) = passes::implement::run(
            lowered.netlist,
            &flow.device,
            flow.seed,
            flow.effort,
            flow.place_seeds,
            implement_threads,
            flow.partitions,
            &lowered.info.seam_cells,
            &tracer,
        );
        let mut counters = vec![("trials".to_string(), u64::from(flow.place_seeds.max(1)))];
        if let Some(t) = trials.iter().find(|t| t.idx == winner) {
            // Deterministic (pure function of netlist + seed), so safe to
            // expose as a counter that participates in trace equality.
            counters.push(("winner-hpwl".to_string(), t.hpwl.round() as u64));
        }
        if let Some(p) = &partition {
            counters.push(("islands".to_string(), u64::from(p.islands)));
            counters.push((
                "crossing-registers".to_string(),
                u64::from(p.crossing_registers),
            ));
            counters.push(("cut-nets".to_string(), u64::from(p.cut_nets)));
        }
        stage_counters(&span, &counters);
        if span.is_enabled() {
            if let Some(p) = &partition {
                for (i, (&cells, &(x0, y0, w, h))) in
                    p.island_cells.iter().zip(&p.island_regions).enumerate()
                {
                    hlsb_trace::event!(span, "partition.island",
                        "island" => i as u64,
                        "cells" => u64::from(cells),
                        "region-x0" => u64::from(x0),
                        "region-y0" => u64::from(y0),
                        "region-w" => u64::from(w),
                        "region-h" => u64::from(h));
                }
            }
            // Trial spans are emitted post-hoc in trial order with their
            // worker-measured time windows, so the tree shape is the same
            // for sequential and parallel execution.
            let clock_ns = 1000.0 / flow.clock_mhz;
            for t in &trials {
                let ts = span.child(&format!("trial-{}", t.idx));
                ts.set_track(t.idx + 1);
                ts.attr("seed", t.seed);
                ts.attr("period-ns", t.period_ns);
                ts.attr("fmax-mhz", t.fmax_mhz);
                ts.attr("duplicated-regs", t.duplicated_regs as u64);
                ts.attr("retime-moves", t.retime_moves as u64);
                ts.attr("hpwl", t.hpwl);
                ts.attr("winner", t.idx == winner);
                ts.observe("slack-ns", &SLACK_NS_BOUNDS, clock_ns - t.period_ns);
                if let Some(p) = &partition {
                    // Island placements of this trial, as children of the
                    // trial span (phase A of the partitioned strategy).
                    for is in p.island_summaries.iter().filter(|s| s.trial == t.idx) {
                        let isp = ts.child(&format!("island-{}", is.island));
                        isp.attr("cells", u64::from(is.cells));
                        isp.attr("hpwl", is.hpwl);
                        isp.set_window(is.start_us, is.dur_us);
                        isp.finish();
                    }
                }
                ts.set_window(t.start_us, t.dur_us);
            }
        }
        span.finish();
        timer.done(&mut trace, counters);

        // Sign-off: assemble the result.
        let timer = trace.start("sign-off");
        let span = root.child("sign-off");
        let partition_summary = partition.map(|p| crate::result::PartitionSummary {
            islands: p.islands,
            cut_nets: p.cut_nets,
            crossing_registers: p.crossing_registers,
            crossing_register_bits: p.crossing_register_bits,
            island_cells: p.island_cells,
        });
        let (mut result, netlist, placement) = passes::signoff::assemble(
            &flow.device,
            &schedule,
            design.concurrency,
            lowered.info,
            imp,
            partition_summary,
            lint,
            verify,
        );
        let counters = vec![(
            "critical-cells".to_string(),
            result.critical_cells.len() as u64,
        )];
        stage_counters(&span, &counters);
        span.finish();
        timer.done(&mut trace, counters);
        result.trace = trace;
        if flow.trace {
            root.finish();
            let tree = tracer.take_tree();
            // The flat PassTrace becomes a *view* of the span tree, so the
            // two layers cannot drift (same counters either way — the
            // stage spans carry exactly the PassTimer counters).
            result.trace = PassTrace::from_span_tree(&tree);
            result.span_tree = Some(tree);
        }
        Ok((result, netlist, placement))
    }
}
