//! Pass-level observability: wall time and key counters per stage.
//!
//! Every pipeline stage ([`crate::passes`]) appends one [`PassRecord`] to
//! the run's [`PassTrace`], which lands on
//! [`ImplementationResult::trace`](crate::ImplementationResult::trace).
//! This is the flow's first observability layer: sweeps can report where
//! the time goes, and tests can assert structural properties such as "the
//! lint pre-pass reused the front-end instead of re-running it".

use std::fmt;
use std::time::Instant;

/// One executed (or cache-satisfied) pass.
#[derive(Debug, Clone)]
pub struct PassRecord {
    /// Stage name (`front-end`, `schedule`, `lower`, `implement`,
    /// `sign-off`, `lint`).
    pub pass: &'static str,
    /// Wall-clock time spent in the stage, milliseconds.
    pub wall_ms: f64,
    /// Stage counters, e.g. `("executions", 1)` or `("cache-hits", 1)`.
    pub counters: Vec<(&'static str, u64)>,
}

/// Structural equality: wall times vary run to run and machine to machine,
/// so two records are equal when they describe the same pass with the same
/// counters. This keeps `ImplementationResult` comparisons meaningful for
/// the determinism guarantees (cached ≡ fresh, parallel ≡ sequential).
impl PartialEq for PassRecord {
    fn eq(&self, other: &Self) -> bool {
        self.pass == other.pass && self.counters == other.counters
    }
}

/// Trace of every pass executed for one implementation run, in order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PassTrace {
    /// Pass records, in execution order.
    pub records: Vec<PassRecord>,
}

impl PassTrace {
    /// Starts timing a pass; finish with [`PassTimer::done`].
    pub(crate) fn start(&mut self, pass: &'static str) -> PassTimer {
        PassTimer {
            pass,
            t0: Instant::now(),
        }
    }

    /// The value of `counter` in the first record of `pass`, if any.
    pub fn counter(&self, pass: &str, counter: &str) -> Option<u64> {
        self.records
            .iter()
            .find(|r| r.pass == pass)
            .and_then(|r| r.counters.iter().find(|(n, _)| *n == counter))
            .map(|(_, v)| *v)
    }

    /// Total wall time across all recorded passes, milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.records.iter().map(|r| r.wall_ms).sum()
    }

    /// Accumulates another trace's records into per-pass totals (counters
    /// summed, wall times summed) — for sweep-level reporting.
    pub fn merge(&mut self, other: &PassTrace) {
        for rec in &other.records {
            if let Some(mine) = self.records.iter_mut().find(|r| r.pass == rec.pass) {
                mine.wall_ms += rec.wall_ms;
                for (name, v) in &rec.counters {
                    if let Some((_, mv)) = mine.counters.iter_mut().find(|(n, _)| n == name) {
                        *mv += v;
                    } else {
                        mine.counters.push((name, *v));
                    }
                }
            } else {
                self.records.push(rec.clone());
            }
        }
    }
}

impl fmt::Display for PassTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<12} {:>10}  counters", "pass", "wall (ms)")?;
        for r in &self.records {
            let counters = r
                .counters
                .iter()
                .map(|(n, v)| format!("{n}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            writeln!(f, "{:<12} {:>10.3}  {}", r.pass, r.wall_ms, counters)?;
        }
        write!(f, "{:<12} {:>10.3}", "total", self.total_ms())
    }
}

/// In-flight pass timing, created by [`PassTrace::start`].
pub(crate) struct PassTimer {
    pass: &'static str,
    t0: Instant,
}

impl PassTimer {
    /// Stops the clock and appends the record.
    pub(crate) fn done(self, trace: &mut PassTrace, counters: Vec<(&'static str, u64)>) {
        trace.records.push(PassRecord {
            pass: self.pass,
            wall_ms: self.t0.elapsed().as_secs_f64() * 1e3,
            counters,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pass: &'static str, ms: f64, counters: Vec<(&'static str, u64)>) -> PassRecord {
        PassRecord {
            pass,
            wall_ms: ms,
            counters,
        }
    }

    #[test]
    fn equality_is_structural_not_temporal() {
        let a = rec("front-end", 1.0, vec![("executions", 1)]);
        let b = rec("front-end", 99.0, vec![("executions", 1)]);
        assert_eq!(a, b, "wall time must not affect equality");
        let c = rec("front-end", 1.0, vec![("executions", 2)]);
        assert_ne!(a, c, "counters must affect equality");
    }

    #[test]
    fn counter_lookup_and_total() {
        let mut t = PassTrace::default();
        let timer = t.start("lower");
        timer.done(&mut t, vec![("cells", 42)]);
        assert_eq!(t.counter("lower", "cells"), Some(42));
        assert_eq!(t.counter("lower", "nope"), None);
        assert_eq!(t.counter("nope", "cells"), None);
        assert!(t.total_ms() >= 0.0);
        assert!(t.to_string().contains("lower"));
    }

    #[test]
    fn merge_accumulates_per_pass() {
        let mut a = PassTrace {
            records: vec![rec("front-end", 1.0, vec![("executions", 1)])],
        };
        let b = PassTrace {
            records: vec![
                rec("front-end", 2.0, vec![("executions", 0), ("cache-hits", 1)]),
                rec("lower", 3.0, vec![("cells", 7)]),
            ],
        };
        a.merge(&b);
        assert_eq!(a.counter("front-end", "executions"), Some(1));
        assert_eq!(a.counter("front-end", "cache-hits"), Some(1));
        assert_eq!(a.counter("lower", "cells"), Some(7));
        assert!((a.total_ms() - 6.0).abs() < 1e-9);
    }
}
