//! Pass-level observability: wall time and key counters per stage.
//!
//! Every pipeline stage ([`crate::passes`]) appends one [`PassRecord`] to
//! the run's [`PassTrace`], which lands on
//! [`ImplementationResult::trace`](crate::ImplementationResult::trace).
//! This is the flow's flat observability layer: sweeps can report where
//! the time goes, and tests can assert structural properties such as "the
//! lint pre-pass reused the front-end instead of re-running it".
//!
//! Since the span tracer landed ([`hlsb_trace`]), `PassTrace` is the
//! *compatibility view*: when tracing is enabled the session derives it
//! from the span tree via [`PassTrace::from_span_tree`] — each depth-1
//! stage span becomes one record, its unsigned attributes become the
//! counters — so the two layers cannot drift apart.

use std::fmt;
use std::time::Instant;

/// One executed (or cache-satisfied) pass.
#[derive(Debug, Clone)]
pub struct PassRecord {
    /// Stage name (`front-end`, `schedule`, `lower`, `implement`,
    /// `sign-off`, `lint`).
    pub pass: String,
    /// Wall-clock time spent in the stage, milliseconds.
    pub wall_ms: f64,
    /// Stage counters, e.g. `("executions", 1)` or `("cache-hits", 1)`.
    pub counters: Vec<(String, u64)>,
}

/// Structural equality: wall times vary run to run and machine to machine,
/// so two records are equal when they describe the same pass with the same
/// counters. This keeps `ImplementationResult` comparisons meaningful for
/// the determinism guarantees (cached ≡ fresh, parallel ≡ sequential).
impl PartialEq for PassRecord {
    fn eq(&self, other: &Self) -> bool {
        self.pass == other.pass && self.counters == other.counters
    }
}

/// Trace of every pass executed for one implementation run, in order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PassTrace {
    /// Pass records, in execution order.
    pub records: Vec<PassRecord>,
}

impl PassTrace {
    /// Starts timing a pass; finish with [`PassTimer::done`].
    pub(crate) fn start(&mut self, pass: &str) -> PassTimer {
        PassTimer {
            pass: pass.to_string(),
            t0: Instant::now(),
        }
    }

    /// The compatibility view of a span tree: each depth-1 span under the
    /// root becomes one record (wall time from the span, counters from its
    /// unsigned-integer attributes, insertion order preserved).
    pub fn from_span_tree(tree: &hlsb_trace::TraceTree) -> PassTrace {
        let mut trace = PassTrace::default();
        let Some(root) = tree.root() else {
            return trace;
        };
        for span in tree.children(root.id) {
            trace.records.push(PassRecord {
                pass: span.name.clone(),
                wall_ms: span.dur_us / 1000.0,
                counters: span
                    .attrs
                    .iter()
                    .filter_map(|a| a.value.as_u64().map(|v| (a.key.clone(), v)))
                    .collect(),
            });
        }
        trace
    }

    /// The total of `counter` across **all** records of `pass` (`None` if
    /// no record of the pass carries the counter). Batch runs
    /// (`run_many`, DSE) append one record per flow per stage, so a
    /// single-record lookup would silently undercount.
    pub fn counter(&self, pass: &str, counter: &str) -> Option<u64> {
        let mut total = None;
        for rec in self.records.iter().filter(|r| r.pass == pass) {
            for (name, v) in &rec.counters {
                if name == counter {
                    *total.get_or_insert(0) += v;
                }
            }
        }
        total
    }

    /// Total wall time across all recorded passes, milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.records.iter().map(|r| r.wall_ms).sum()
    }

    /// Accumulates another trace's records into per-pass totals (counters
    /// summed, wall times summed) — for sweep-level reporting.
    pub fn merge(&mut self, other: &PassTrace) {
        for rec in &other.records {
            if let Some(mine) = self.records.iter_mut().find(|r| r.pass == rec.pass) {
                mine.wall_ms += rec.wall_ms;
                for (name, v) in &rec.counters {
                    if let Some((_, mv)) = mine.counters.iter_mut().find(|(n, _)| n == name) {
                        *mv += v;
                    } else {
                        mine.counters.push((name.clone(), *v));
                    }
                }
            } else {
                self.records.push(rec.clone());
            }
        }
    }
}

impl fmt::Display for PassTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<12} {:>10}  counters", "pass", "wall (ms)")?;
        for r in &self.records {
            let counters = r
                .counters
                .iter()
                .map(|(n, v)| format!("{n}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            writeln!(f, "{:<12} {:>10.3}  {}", r.pass, r.wall_ms, counters)?;
        }
        write!(f, "{:<12} {:>10.3}", "total", self.total_ms())
    }
}

/// In-flight pass timing, created by [`PassTrace::start`].
pub(crate) struct PassTimer {
    pass: String,
    t0: Instant,
}

impl PassTimer {
    /// Stops the clock and appends the record.
    pub(crate) fn done(self, trace: &mut PassTrace, counters: Vec<(String, u64)>) {
        trace.records.push(PassRecord {
            pass: self.pass,
            wall_ms: self.t0.elapsed().as_secs_f64() * 1e3,
            counters,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pass: &str, ms: f64, counters: Vec<(&str, u64)>) -> PassRecord {
        PassRecord {
            pass: pass.to_string(),
            wall_ms: ms,
            counters: counters
                .into_iter()
                .map(|(n, v)| (n.to_string(), v))
                .collect(),
        }
    }

    #[test]
    fn equality_is_structural_not_temporal() {
        let a = rec("front-end", 1.0, vec![("executions", 1)]);
        let b = rec("front-end", 99.0, vec![("executions", 1)]);
        assert_eq!(a, b, "wall time must not affect equality");
        let c = rec("front-end", 1.0, vec![("executions", 2)]);
        assert_ne!(a, c, "counters must affect equality");
    }

    #[test]
    fn counter_lookup_and_total() {
        let mut t = PassTrace::default();
        let timer = t.start("lower");
        timer.done(&mut t, vec![("cells".to_string(), 42)]);
        assert_eq!(t.counter("lower", "cells"), Some(42));
        assert_eq!(t.counter("lower", "nope"), None);
        assert_eq!(t.counter("nope", "cells"), None);
        assert!(t.total_ms() >= 0.0);
        assert!(t.to_string().contains("lower"));
    }

    #[test]
    fn counter_total_sums_across_repeated_records() {
        // run_many / DSE append one record per flow per stage; the lookup
        // must total them, not read only the first.
        let t = PassTrace {
            records: vec![
                rec("implement", 1.0, vec![("trials", 3)]),
                rec("schedule", 0.5, vec![("executions", 1)]),
                rec("implement", 2.0, vec![("trials", 5)]),
                rec("implement", 1.0, vec![]),
            ],
        };
        assert_eq!(t.counter("implement", "trials"), Some(8));
        // A pass present without the counter still reports None.
        assert_eq!(t.counter("schedule", "trials"), None);
    }

    #[test]
    fn merge_accumulates_per_pass() {
        let mut a = PassTrace {
            records: vec![rec("front-end", 1.0, vec![("executions", 1)])],
        };
        let b = PassTrace {
            records: vec![
                rec("front-end", 2.0, vec![("executions", 0), ("cache-hits", 1)]),
                rec("lower", 3.0, vec![("cells", 7)]),
            ],
        };
        a.merge(&b);
        assert_eq!(a.counter("front-end", "executions"), Some(1));
        assert_eq!(a.counter("front-end", "cache-hits"), Some(1));
        assert_eq!(a.counter("lower", "cells"), Some(7));
        assert!((a.total_ms() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn from_span_tree_mirrors_stage_spans() {
        let tracer = hlsb_trace::Tracer::enabled();
        let root = tracer.root("flow");
        {
            let fe = root.child("front-end");
            fe.attr("executions", 1u64);
            fe.attr_volatile("cache-hits", 0u64);
            fe.attr("clock-ns", 3.0); // non-integer attrs are not counters
                                      // Depth-2 spans (e.g. placement trials) are not records.
            let _inner = fe.child("sub");
        }
        root.finish();
        let trace = PassTrace::from_span_tree(&tracer.take_tree());
        assert_eq!(trace.records.len(), 1);
        assert_eq!(trace.records[0].pass, "front-end");
        assert_eq!(
            trace.records[0].counters,
            vec![("executions".to_string(), 1), ("cache-hits".to_string(), 0)]
        );
    }
}
