//! Sign-off pass: final STA numbers, utilization and result assembly.

use hlsb_fabric::Device;
use hlsb_netlist::Netlist;
use hlsb_place::Placement;
use hlsb_rtlgen::LowerInfo;

use crate::passes::implement::ImplementOutput;
use crate::passes::ScheduleArtifact;
use crate::result::{ImplementationResult, PartitionSummary, Utilization};
use crate::trace::PassTrace;

/// Assembles the final [`ImplementationResult`] from the stage outputs.
/// The caller attaches the finished [`PassTrace`] afterwards (this pass
/// records itself into it too).
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble(
    device: &Device,
    schedule: &ScheduleArtifact,
    concurrency: hlsb_ir::Concurrency,
    lower_info: LowerInfo,
    imp: ImplementOutput,
    partition: Option<PartitionSummary>,
    lint: Option<hlsb_lint::LintReport>,
    verify: Option<hlsb_findings::Report>,
) -> (ImplementationResult, Netlist, Placement) {
    let ImplementOutput {
        netlist,
        placement,
        timing,
        fanout,
        retime,
    } = imp;
    let critical_cells: Vec<String> = timing
        .critical_path
        .iter()
        .map(|&c| {
            let cell = netlist.cell(c);
            format!("{}:{}", cell.kind, cell.name)
        })
        .collect();

    let stats = netlist.stats();
    let res = device.resources;
    let (lut_pct, ff_pct, bram_pct, dsp_pct) =
        stats.utilization(res.luts, res.ffs, res.brams, res.dsps);

    let result = ImplementationResult {
        fmax_mhz: timing.fmax_mhz,
        period_ns: timing.period_ns,
        utilization: Utilization {
            lut_pct,
            ff_pct,
            bram_pct,
            dsp_pct,
        },
        stats,
        timing,
        lower_info,
        schedule_depths: schedule.depths.clone(),
        latency_cycles: schedule.latency_cycles(concurrency),
        inserted_regs: schedule.inserted_regs,
        duplicated_regs: fanout.duplicated_registers,
        retime_moves: retime.moves,
        critical_cells,
        partition,
        lint,
        verify,
        trace: PassTrace::default(),
        span_tree: None,
    };
    (result, netlist, placement)
}
