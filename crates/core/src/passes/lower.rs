//! Lower pass: RTL generation, netlist validation and the device
//! capacity check.

use hlsb_delay::HlsPredictedModel;
use hlsb_fabric::Device;
use hlsb_ir::Design;
use hlsb_netlist::Netlist;
use hlsb_rtlgen::{lower_design, ControlStyle, LowerInfo, RtlOptions, ScheduledDesign};

use crate::error::FlowError;
use crate::options::{OptimizationOptions, Partitioning};
use crate::passes::ScheduleArtifact;

/// The lower pass output: a validated, capacity-checked netlist.
#[derive(Debug)]
pub(crate) struct LowerOutput {
    pub netlist: Netlist,
    pub info: LowerInfo,
}

/// Lowers the scheduled design to a netlist and rejects designs that do
/// not fit the device.
///
/// With island partitioning requested, every inter-kernel channel may
/// gain one registered crossing hop, so the control logic provisions one
/// extra skid slot (`RtlOptions::crossing_slots`). The provisioning is
/// uniform — it does not depend on where the cut lands (or whether the
/// implement stage later falls back to flat placement), which keeps
/// lowering independent of placement and the VC02 contract honest in
/// both outcomes.
pub(crate) fn run(
    design: &Design,
    schedule: &ScheduleArtifact,
    options: &OptimizationOptions,
    partitions: Partitioning,
    device: &Device,
) -> Result<LowerOutput, FlowError> {
    let rtl_options = RtlOptions {
        control: if options.skid_buffer {
            ControlStyle::Skid {
                min_area: options.min_area_skid,
            }
        } else {
            ControlStyle::Stall
        },
        sync_pruning: options.sync_pruning,
        crossing_slots: u64::from(partitions.is_enabled()),
    };
    let sd = ScheduledDesign {
        design,
        loops: &schedule.loops,
    };
    let predicted = HlsPredictedModel::new();
    let lowered = lower_design(&sd, &rtl_options, &predicted);
    let netlist = lowered.netlist;
    netlist.validate()?;

    let stats = netlist.stats();
    let res = device.resources;
    for (used, cap, name) in [
        (stats.luts, res.luts, "LUT"),
        (stats.ffs, res.ffs, "FF"),
        (stats.brams, res.brams, "BRAM"),
        (stats.dsps, res.dsps, "DSP"),
    ] {
        if used > cap {
            return Err(FlowError::DoesNotFit {
                what: format!("{name}: {used} needed, {cap} available"),
            });
        }
    }
    let site_budget = u64::from(device.grid_w) * u64::from(device.grid_h) / 2;
    if netlist.cell_count() as u64 >= site_budget {
        return Err(FlowError::DoesNotFit {
            what: format!(
                "{} cells exceed the placement budget of {site_budget} sites",
                netlist.cell_count()
            ),
        });
    }
    Ok(LowerOutput {
        netlist,
        info: lowered.info,
    })
}
