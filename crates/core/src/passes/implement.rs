//! Implement pass: multi-seed placement, fanout optimization, retiming
//! and timing-driven refinement — the best-timing trial wins.

use std::sync::atomic::{AtomicU32, Ordering};
use std::thread;

use hlsb_fabric::{Device, WireModel};
use hlsb_netlist::Netlist;
use hlsb_place::{place_with, AnnealConfig, Placement};
use hlsb_timing::{
    fanout_opt::FanoutOptReport, optimize_fanout, refine_critical, retime, retime::RetimeReport,
    FanoutOptions, RefineOptions, RetimeOptions, TimingReport,
};

use crate::options::PlaceEffort;

/// The winning trial's netlist, placement and reports.
#[derive(Debug)]
pub(crate) struct ImplementOutput {
    pub netlist: Netlist,
    pub placement: Placement,
    pub timing: TimingReport,
    pub fanout: FanoutOptReport,
    pub retime: RetimeReport,
}

/// Deterministic per-trial provenance, captured inside the worker that
/// ran the trial. The timing window (`start_us`/`dur_us`, relative to the
/// session tracer's epoch) is informational only — everything else is a
/// pure function of the netlist and seed, so trial spans built from these
/// summaries are identical for sequential and parallel execution.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TrialSummary {
    pub idx: u32,
    pub seed: u64,
    pub period_ns: f64,
    pub fmax_mhz: f64,
    pub duplicated_regs: usize,
    pub retime_moves: usize,
    pub start_us: f64,
    pub dur_us: f64,
}

struct TrialOutcome {
    idx: u32,
    out: ImplementOutput,
    summary: TrialSummary,
}

/// Sequential selection order: a later trial wins only on strictly
/// better timing, so ties keep the lowest trial index. The parallel
/// reduction uses the same predicate, which makes parallel ≡ sequential
/// regardless of completion order.
fn better(a: &TrialOutcome, b: &TrialOutcome) -> bool {
    a.out.timing.period_ns < b.out.timing.period_ns
        || (a.out.timing.period_ns == b.out.timing.period_ns && a.idx < b.idx)
}

fn run_trial(
    mut nl: Netlist,
    idx: u32,
    device: &Device,
    wire: &WireModel,
    anneal: AnnealConfig,
    base_seed: u64,
    tracer: &hlsb_trace::Tracer,
) -> TrialOutcome {
    let start_us = tracer.now_us();
    let seed = hlsb_rng::derive_seed(base_seed, u64::from(idx));
    let mut placement = place_with(&nl, device, seed, anneal);
    let fanout = optimize_fanout(&mut nl, &mut placement, FanoutOptions::default());
    let (rt, _) = retime(&mut nl, &mut placement, wire, RetimeOptions::default());
    // Timing-driven refinement, as physical synthesis would run.
    let (_refine, timing) = refine_critical(&nl, &mut placement, wire, RefineOptions::default());
    let summary = TrialSummary {
        idx,
        seed,
        period_ns: timing.period_ns,
        fmax_mhz: timing.fmax_mhz,
        duplicated_regs: fanout.duplicated_registers,
        retime_moves: rt.moves,
        start_us,
        dur_us: tracer.now_us() - start_us,
    };
    TrialOutcome {
        idx,
        out: ImplementOutput {
            netlist: nl,
            placement,
            timing,
            fanout,
            retime: rt,
        },
        summary,
    }
}

/// Places and optimizes `netlist` with `place_seeds` independent seeds
/// (streams of `seed` via [`hlsb_rng::derive_seed`]; stream 0 is `seed`
/// itself) and keeps the best-timing result. Trials run on up to
/// `threads` scoped threads; a single trial consumes the netlist without
/// cloning.
///
/// Returns the winning output plus every trial's summary (sorted by
/// trial index) and the winner's index, for span-trace emission.
pub(crate) fn run(
    netlist: Netlist,
    device: &Device,
    seed: u64,
    effort: PlaceEffort,
    place_seeds: u32,
    threads: usize,
    tracer: &hlsb_trace::Tracer,
) -> (ImplementOutput, Vec<TrialSummary>, u32) {
    let anneal = match effort {
        PlaceEffort::Fast => AnnealConfig {
            moves_per_cell: 12,
            min_moves: 3_000,
            max_moves: 60_000,
            cooling: 0.8,
            batches: 25,
        },
        PlaceEffort::Normal => AnnealConfig::default(),
    };
    let wire = WireModel::for_device(device);
    let trials = place_seeds.max(1);

    if trials == 1 {
        let t = run_trial(netlist, 0, device, &wire, anneal, seed, tracer);
        return (t.out, vec![t.summary], 0);
    }

    let workers = threads.clamp(1, trials as usize);
    let (best, mut summaries) = if workers == 1 {
        let mut best: Option<TrialOutcome> = None;
        let mut summaries = Vec::with_capacity(trials as usize);
        for idx in 0..trials {
            let t = run_trial(netlist.clone(), idx, device, &wire, anneal, seed, tracer);
            summaries.push(t.summary.clone());
            if best.as_ref().is_none_or(|b| better(&t, b)) {
                best = Some(t);
            }
        }
        (best, summaries)
    } else {
        let next = AtomicU32::new(0);
        let per_worker: Vec<(Option<TrialOutcome>, Vec<TrialSummary>)> = thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut best: Option<TrialOutcome> = None;
                        let mut summaries = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= trials {
                                break;
                            }
                            let t = run_trial(
                                netlist.clone(),
                                idx,
                                device,
                                &wire,
                                anneal,
                                seed,
                                tracer,
                            );
                            summaries.push(t.summary.clone());
                            if best.as_ref().is_none_or(|b| better(&t, b)) {
                                best = Some(t);
                            }
                        }
                        (best, summaries)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("placement trial panicked"))
                .collect()
        });
        let mut best: Option<TrialOutcome> = None;
        let mut summaries = Vec::with_capacity(trials as usize);
        for (wb, ws) in per_worker {
            summaries.extend(ws);
            if let Some(t) = wb {
                if best.as_ref().is_none_or(|b| better(&t, b)) {
                    best = Some(t);
                }
            }
        }
        (best, summaries)
    };
    // Deterministic emission order regardless of worker interleaving.
    summaries.sort_by_key(|s| s.idx);
    let best = best.expect("at least one placement trial");
    (best.out, summaries, best.idx)
}
