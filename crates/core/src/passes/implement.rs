//! Implement pass: multi-seed placement, fanout optimization, retiming
//! and timing-driven refinement — the best-timing trial wins.
//!
//! Two placement strategies share the pass:
//!
//! - **Flat** (default): each trial anneals the whole netlist on the whole
//!   device, exactly as before partitioning existed.
//! - **Partitioned** ([`Partitioning::Auto`] / [`Partitioning::Fixed`]):
//!   the netlist is cut at its dataflow seams into islands, every
//!   inter-island net is registered, each island gets a reserved vertical
//!   strip of the device, and all `trials × islands` island placements run
//!   in one work-stealing pool (phase A). Each trial then merges its
//!   island placements and runs the global fanout/retime/refine passes
//!   (phase B, parallel over trials).
//!
//! Both strategies are deterministic and thread-count independent: phase-A
//! results are keyed by `(trial, island)` slot, each island placement is a
//! pure function of `(island netlist, region, seed)`, and the winning
//! trial is picked with the same strictly-better predicate the sequential
//! loop uses.

use std::sync::atomic::{AtomicU32, Ordering};
use std::thread;

use hlsb_fabric::{Device, WireModel};
use hlsb_netlist::{CellId, Netlist, Subgraph};
use hlsb_place::{
    auto_islands, max_islands, partition, place_in_region, place_with, reserve_regions,
    stitch_crossings, AnnealConfig, Placement, Region,
};
use hlsb_timing::{
    fanout_opt::FanoutOptReport, optimize_fanout, refine_critical, retime, retime::RetimeReport,
    FanoutOptions, RefineOptions, RetimeOptions, TimingReport,
};

use crate::options::{Partitioning, PlaceEffort};

/// The winning trial's netlist, placement and reports.
#[derive(Debug)]
pub(crate) struct ImplementOutput {
    pub netlist: Netlist,
    pub placement: Placement,
    pub timing: TimingReport,
    pub fanout: FanoutOptReport,
    pub retime: RetimeReport,
}

/// Deterministic per-trial provenance, captured inside the worker that
/// ran the trial. The timing window (`start_us`/`dur_us`, relative to the
/// session tracer's epoch) is informational only — everything else is a
/// pure function of the netlist and seed, so trial spans built from these
/// summaries are identical for sequential and parallel execution.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TrialSummary {
    pub idx: u32,
    pub seed: u64,
    pub period_ns: f64,
    pub fmax_mhz: f64,
    pub duplicated_regs: usize,
    pub retime_moves: usize,
    /// Total half-perimeter wirelength of the trial's final placement.
    pub hpwl: f64,
    pub start_us: f64,
    pub dur_us: f64,
}

/// Provenance of one island placement of one trial (phase A of the
/// partitioned strategy), for span emission.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct IslandSummary {
    pub trial: u32,
    pub island: u32,
    /// Cells placed in this island (crossing registers included).
    pub cells: u32,
    /// HPWL of the island placement, before global optimization.
    pub hpwl: f64,
    pub start_us: f64,
    pub dur_us: f64,
}

/// What the partitioned strategy did, for the result and the trace.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PartitionReport {
    /// Islands actually used (>= 2).
    pub islands: u32,
    /// Nets that crossed an island boundary before stitching.
    pub cut_nets: u32,
    /// Crossing registers inserted.
    pub crossing_registers: u32,
    /// Flip-flop bits those registers cost.
    pub crossing_register_bits: u64,
    /// Cells per island, after stitching.
    pub island_cells: Vec<u32>,
    /// Reserved region per island, as `(x0, y0, w, h)`.
    pub island_regions: Vec<(u16, u16, u16, u16)>,
    /// Per-(trial, island) placement provenance, sorted by trial then
    /// island.
    pub island_summaries: Vec<IslandSummary>,
}

struct TrialOutcome {
    idx: u32,
    out: ImplementOutput,
    summary: TrialSummary,
}

/// Sequential selection order: a later trial wins only on strictly
/// better timing, so ties keep the lowest trial index. The parallel
/// reduction uses the same predicate, which makes parallel ≡ sequential
/// regardless of completion order.
fn better(a: &TrialOutcome, b: &TrialOutcome) -> bool {
    a.out.timing.period_ns < b.out.timing.period_ns
        || (a.out.timing.period_ns == b.out.timing.period_ns && a.idx < b.idx)
}

/// Global optimization of one placed trial: fanout duplication, backward
/// retiming, timing-driven refinement, then the summary.
fn finish_trial(
    mut nl: Netlist,
    mut placement: Placement,
    idx: u32,
    seed: u64,
    wire: &WireModel,
    start_us: f64,
    tracer: &hlsb_trace::Tracer,
) -> TrialOutcome {
    let fanout = optimize_fanout(&mut nl, &mut placement, FanoutOptions::default());
    let (rt, _) = retime(&mut nl, &mut placement, wire, RetimeOptions::default());
    // Timing-driven refinement, as physical synthesis would run.
    let (_refine, timing) = refine_critical(&nl, &mut placement, wire, RefineOptions::default());
    let summary = TrialSummary {
        idx,
        seed,
        period_ns: timing.period_ns,
        fmax_mhz: timing.fmax_mhz,
        duplicated_regs: fanout.duplicated_registers,
        retime_moves: rt.moves,
        hpwl: placement.total_hpwl(&nl),
        start_us,
        dur_us: tracer.now_us() - start_us,
    };
    TrialOutcome {
        idx,
        out: ImplementOutput {
            netlist: nl,
            placement,
            timing,
            fanout,
            retime: rt,
        },
        summary,
    }
}

fn run_trial(
    nl: Netlist,
    idx: u32,
    device: &Device,
    wire: &WireModel,
    anneal: AnnealConfig,
    base_seed: u64,
    tracer: &hlsb_trace::Tracer,
) -> TrialOutcome {
    let start_us = tracer.now_us();
    let seed = hlsb_rng::derive_seed(base_seed, u64::from(idx));
    let placement = place_with(&nl, device, seed, anneal);
    finish_trial(nl, placement, idx, seed, wire, start_us, tracer)
}

/// Everything the partitioned strategy pre-computes once, shared by all
/// trials: the stitched netlist, the per-island subgraphs and the
/// reserved regions.
struct PartitionPlan {
    netlist: Netlist,
    subs: Vec<Subgraph>,
    regions: Vec<Region>,
    cut_nets: u32,
    crossing_registers: u32,
    crossing_register_bits: u64,
}

/// Decides whether (and how) to partition. Returns `None` — flat
/// placement — when partitioning is off, the design resolves to fewer
/// than two islands, or the device cannot host the reserved regions. The
/// decision is a pure function of `(netlist, device, partitions, seams)`,
/// never of the thread count.
fn plan_partition(
    netlist: &Netlist,
    device: &Device,
    partitions: Partitioning,
    seams: &[CellId],
) -> Option<PartitionPlan> {
    if !partitions.is_enabled() {
        return None;
    }
    let k = match partitions {
        Partitioning::Off => return None,
        Partitioning::Auto => auto_islands(netlist, device),
        Partitioning::Fixed(k) => k.min(max_islands(device)),
    };
    if k < 2 {
        return None;
    }
    let mut part = partition(netlist, seams, k);
    if part.len() < 2 {
        return None;
    }
    // Auto mode only partitions when the cut is cheap (the RapidStream
    // premise: cut at low-bandwidth dataflow boundaries). A fat cut —
    // dense logic split down the middle because no seam exists — costs
    // more in crossing wiring than parallel island annealing buys, so
    // designs whose best cut severs more than ~2% of their nets fall
    // back to flat placement. An explicit `Fixed(k)` is always honored.
    if partitions == Partitioning::Auto {
        let cut = count_cut_nets(netlist, &part);
        if cut * 50 > netlist.cell_count() {
            return None;
        }
    }
    let mut stitched = netlist.clone();
    let crossings = stitch_crossings(&mut stitched, &mut part);
    let sizes: Vec<usize> = part.islands.iter().map(Vec::len).collect();
    let regions = reserve_regions(device, &sizes)?;
    let subs: Vec<Subgraph> = part
        .islands
        .iter()
        .map(|cells| stitched.subgraph(cells))
        .collect();
    Some(PartitionPlan {
        netlist: stitched,
        subs,
        regions,
        cut_nets: crossings.cut_nets,
        crossing_registers: crossings.registers,
        crossing_register_bits: crossings.register_bits,
    })
}

/// Nets whose driver and some sink live in different islands — what
/// [`stitch_crossings`] would register. Counted on the unstitched
/// netlist so the Auto-mode quality gate can reject a fat cut before
/// cloning anything.
fn count_cut_nets(netlist: &Netlist, part: &hlsb_place::Partition) -> usize {
    netlist
        .nets()
        .filter(|(_, net)| {
            let home = part.island_of[net.driver.index()];
            net.sinks.iter().any(|s| part.island_of[s.index()] != home)
        })
        .count()
}

/// One phase-A task: place island `island` of trial `trial` in its
/// reserved region. Pure function of the plan, the base seed and the
/// slot.
fn place_island(
    plan: &PartitionPlan,
    device: &Device,
    anneal: AnnealConfig,
    base_seed: u64,
    trial: u32,
    island: u32,
    tracer: &hlsb_trace::Tracer,
) -> (Placement, IslandSummary) {
    let start_us = tracer.now_us();
    let trial_seed = hlsb_rng::derive_seed(base_seed, u64::from(trial));
    let island_seed = hlsb_rng::derive_seed(trial_seed, u64::from(island));
    let sub = &plan.subs[island as usize];
    let placement = place_in_region(
        &sub.netlist,
        device,
        plan.regions[island as usize],
        island_seed,
        anneal,
    );
    let summary = IslandSummary {
        trial,
        island,
        cells: sub.netlist.cell_count() as u32,
        hpwl: placement.total_hpwl(&sub.netlist),
        start_us,
        dur_us: tracer.now_us() - start_us,
    };
    (placement, summary)
}

/// Merges one trial's island placements into a full-grid placement.
fn merge_islands(plan: &PartitionPlan, device: &Device, islands: &[&Placement]) -> Placement {
    let mut locs = vec![(0u16, 0u16); plan.netlist.cell_count()];
    for (sub, p) in plan.subs.iter().zip(islands) {
        for (local, &global) in sub.global_of.iter().enumerate() {
            locs[global.index()] = p.loc(CellId(local as u32));
        }
    }
    Placement::from_locs(locs, device.grid_w, device.grid_h)
}

#[allow(clippy::too_many_arguments)]
fn run_partitioned(
    plan: PartitionPlan,
    device: &Device,
    wire: &WireModel,
    anneal: AnnealConfig,
    seed: u64,
    trials: u32,
    threads: usize,
    tracer: &hlsb_trace::Tracer,
) -> (ImplementOutput, Vec<TrialSummary>, u32, PartitionReport) {
    let n_islands = plan.subs.len();
    let tasks = trials as usize * n_islands;

    // Phase A: every (trial, island) placement in one work-stealing pool.
    // Results land in their slot, so worker interleaving is invisible.
    let mut slots: Vec<Option<(Placement, IslandSummary)>> = (0..tasks).map(|_| None).collect();
    let workers = threads.clamp(1, tasks.max(1));
    if workers == 1 {
        for (slot, entry) in slots.iter_mut().enumerate() {
            let trial = (slot / n_islands) as u32;
            let island = (slot % n_islands) as u32;
            *entry = Some(place_island(
                &plan, device, anneal, seed, trial, island, tracer,
            ));
        }
    } else {
        let next = AtomicU32::new(0);
        let plan_ref = &plan;
        let produced: Vec<Vec<(usize, (Placement, IslandSummary))>> = thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut mine = Vec::new();
                        loop {
                            let slot = next.fetch_add(1, Ordering::Relaxed) as usize;
                            if slot >= tasks {
                                break;
                            }
                            let trial = (slot / n_islands) as u32;
                            let island = (slot % n_islands) as u32;
                            mine.push((
                                slot,
                                place_island(plan_ref, device, anneal, seed, trial, island, tracer),
                            ));
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("island placement panicked"))
                .collect()
        });
        for (slot, result) in produced.into_iter().flatten() {
            slots[slot] = Some(result);
        }
    }
    let slots: Vec<(Placement, IslandSummary)> = slots
        .into_iter()
        .map(|s| s.expect("every island slot filled"))
        .collect();

    // Phase B: per-trial merge + global fanout/retime/refine, parallel
    // over trials with the same stealing/reduction scheme as flat mode.
    let finish = |idx: u32, nl: Netlist| -> TrialOutcome {
        let trial_slots: Vec<&Placement> = (0..n_islands)
            .map(|i| &slots[idx as usize * n_islands + i].0)
            .collect();
        // The trial's window starts when its first island started.
        let start_us = (0..n_islands)
            .map(|i| slots[idx as usize * n_islands + i].1.start_us)
            .fold(f64::INFINITY, f64::min);
        let placement = merge_islands(&plan, device, &trial_slots);
        let trial_seed = hlsb_rng::derive_seed(seed, u64::from(idx));
        finish_trial(nl, placement, idx, trial_seed, wire, start_us, tracer)
    };

    let workers = threads.clamp(1, trials as usize);
    let (best, mut summaries) = if workers == 1 {
        let mut best: Option<TrialOutcome> = None;
        let mut summaries = Vec::with_capacity(trials as usize);
        let mut source = Some(plan.netlist.clone());
        for idx in 0..trials {
            // The last trial consumes the netlist instead of cloning it.
            let nl = if idx + 1 == trials {
                source.take().expect("source netlist present")
            } else {
                source.as_ref().expect("source netlist present").clone()
            };
            let t = finish(idx, nl);
            summaries.push(t.summary.clone());
            if best.as_ref().is_none_or(|b| better(&t, b)) {
                best = Some(t);
            }
        }
        (best, summaries)
    } else {
        let next = AtomicU32::new(0);
        let nl_ref = &plan.netlist;
        let finish_ref = &finish;
        let per_worker: Vec<(Option<TrialOutcome>, Vec<TrialSummary>)> = thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut best: Option<TrialOutcome> = None;
                        let mut summaries = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= trials {
                                break;
                            }
                            let t = finish_ref(idx, nl_ref.clone());
                            summaries.push(t.summary.clone());
                            if best.as_ref().is_none_or(|b| better(&t, b)) {
                                best = Some(t);
                            }
                        }
                        (best, summaries)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("placement trial panicked"))
                .collect()
        });
        let mut best: Option<TrialOutcome> = None;
        let mut summaries = Vec::with_capacity(trials as usize);
        for (wb, ws) in per_worker {
            summaries.extend(ws);
            if let Some(t) = wb {
                if best.as_ref().is_none_or(|b| better(&t, b)) {
                    best = Some(t);
                }
            }
        }
        (best, summaries)
    };
    summaries.sort_by_key(|s| s.idx);
    let best = best.expect("at least one placement trial");

    let report = PartitionReport {
        islands: n_islands as u32,
        cut_nets: plan.cut_nets,
        crossing_registers: plan.crossing_registers,
        crossing_register_bits: plan.crossing_register_bits,
        island_cells: plan
            .subs
            .iter()
            .map(|s| s.netlist.cell_count() as u32)
            .collect(),
        island_regions: plan
            .regions
            .iter()
            .map(|r| (r.x0, r.y0, r.w, r.h))
            .collect(),
        island_summaries: slots.into_iter().map(|(_, s)| s).collect(),
    };
    (best.out, summaries, best.idx, report)
}

/// Places and optimizes `netlist` with `place_seeds` independent seeds
/// (streams of `seed` via [`hlsb_rng::derive_seed`]; stream 0 is `seed`
/// itself) and keeps the best-timing result. Trials run on up to
/// `threads` scoped threads; a single flat trial consumes the netlist
/// without cloning.
///
/// With `partitions` enabled (and a feasible cut — see `plan_partition`),
/// the partitioned strategy runs instead and the fourth return value
/// reports what it did; flat runs return `None` there.
///
/// Returns the winning output plus every trial's summary (sorted by
/// trial index) and the winner's index, for span-trace emission.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run(
    netlist: Netlist,
    device: &Device,
    seed: u64,
    effort: PlaceEffort,
    place_seeds: u32,
    threads: usize,
    partitions: Partitioning,
    seams: &[CellId],
    tracer: &hlsb_trace::Tracer,
) -> (
    ImplementOutput,
    Vec<TrialSummary>,
    u32,
    Option<PartitionReport>,
) {
    let anneal = match effort {
        PlaceEffort::Fast => AnnealConfig {
            moves_per_cell: 12,
            min_moves: 3_000,
            max_moves: 60_000,
            cooling: 0.8,
            batches: 25,
        },
        PlaceEffort::Normal => AnnealConfig::default(),
    };
    let wire = WireModel::for_device(device);
    let trials = place_seeds.max(1);

    if let Some(plan) = plan_partition(&netlist, device, partitions, seams) {
        drop(netlist); // the stitched netlist supersedes it
        let (out, summaries, winner, report) =
            run_partitioned(plan, device, &wire, anneal, seed, trials, threads, tracer);
        return (out, summaries, winner, Some(report));
    }

    if trials == 1 {
        let t = run_trial(netlist, 0, device, &wire, anneal, seed, tracer);
        return (t.out, vec![t.summary], 0, None);
    }

    let workers = threads.clamp(1, trials as usize);
    let (best, mut summaries) = if workers == 1 {
        let mut best: Option<TrialOutcome> = None;
        let mut summaries = Vec::with_capacity(trials as usize);
        let mut source = Some(netlist);
        for idx in 0..trials {
            // The last trial consumes the netlist instead of cloning it.
            let nl = if idx + 1 == trials {
                source.take().expect("source netlist present")
            } else {
                source.as_ref().expect("source netlist present").clone()
            };
            let t = run_trial(nl, idx, device, &wire, anneal, seed, tracer);
            summaries.push(t.summary.clone());
            if best.as_ref().is_none_or(|b| better(&t, b)) {
                best = Some(t);
            }
        }
        (best, summaries)
    } else {
        let next = AtomicU32::new(0);
        let per_worker: Vec<(Option<TrialOutcome>, Vec<TrialSummary>)> = thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut best: Option<TrialOutcome> = None;
                        let mut summaries = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= trials {
                                break;
                            }
                            let t = run_trial(
                                netlist.clone(),
                                idx,
                                device,
                                &wire,
                                anneal,
                                seed,
                                tracer,
                            );
                            summaries.push(t.summary.clone());
                            if best.as_ref().is_none_or(|b| better(&t, b)) {
                                best = Some(t);
                            }
                        }
                        (best, summaries)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("placement trial panicked"))
                .collect()
        });
        let mut best: Option<TrialOutcome> = None;
        let mut summaries = Vec::with_capacity(trials as usize);
        for (wb, ws) in per_worker {
            summaries.extend(ws);
            if let Some(t) = wb {
                if best.as_ref().is_none_or(|b| better(&t, b)) {
                    best = Some(t);
                }
            }
        }
        (best, summaries)
    };
    // Deterministic emission order regardless of worker interleaving.
    summaries.sort_by_key(|s| s.idx);
    let best = best.expect("at least one placement trial");
    (best.out, summaries, best.idx, None)
}
