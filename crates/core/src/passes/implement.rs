//! Implement pass: multi-seed placement, fanout optimization, retiming
//! and timing-driven refinement — the best-timing trial wins.

use std::sync::atomic::{AtomicU32, Ordering};
use std::thread;

use hlsb_fabric::{Device, WireModel};
use hlsb_netlist::Netlist;
use hlsb_place::{place_with, AnnealConfig, Placement};
use hlsb_timing::{
    fanout_opt::FanoutOptReport, optimize_fanout, refine_critical, retime, retime::RetimeReport,
    FanoutOptions, RefineOptions, RetimeOptions, TimingReport,
};

use crate::options::PlaceEffort;

/// The winning trial's netlist, placement and reports.
#[derive(Debug)]
pub(crate) struct ImplementOutput {
    pub netlist: Netlist,
    pub placement: Placement,
    pub timing: TimingReport,
    pub fanout: FanoutOptReport,
    pub retime: RetimeReport,
}

struct TrialOutcome {
    idx: u32,
    out: ImplementOutput,
}

/// Sequential selection order: a later trial wins only on strictly
/// better timing, so ties keep the lowest trial index. The parallel
/// reduction uses the same predicate, which makes parallel ≡ sequential
/// regardless of completion order.
fn better(a: &TrialOutcome, b: &TrialOutcome) -> bool {
    a.out.timing.period_ns < b.out.timing.period_ns
        || (a.out.timing.period_ns == b.out.timing.period_ns && a.idx < b.idx)
}

fn run_trial(
    mut nl: Netlist,
    idx: u32,
    device: &Device,
    wire: &WireModel,
    anneal: AnnealConfig,
    base_seed: u64,
) -> TrialOutcome {
    let seed = hlsb_rng::derive_seed(base_seed, u64::from(idx));
    let mut placement = place_with(&nl, device, seed, anneal);
    let fanout = optimize_fanout(&mut nl, &mut placement, FanoutOptions::default());
    let (rt, _) = retime(&mut nl, &mut placement, wire, RetimeOptions::default());
    // Timing-driven refinement, as physical synthesis would run.
    let (_refine, timing) = refine_critical(&nl, &mut placement, wire, RefineOptions::default());
    TrialOutcome {
        idx,
        out: ImplementOutput {
            netlist: nl,
            placement,
            timing,
            fanout,
            retime: rt,
        },
    }
}

/// Places and optimizes `netlist` with `place_seeds` independent seeds
/// (streams of `seed` via [`hlsb_rng::derive_seed`]; stream 0 is `seed`
/// itself) and keeps the best-timing result. Trials run on up to
/// `threads` scoped threads; a single trial consumes the netlist without
/// cloning.
pub(crate) fn run(
    netlist: Netlist,
    device: &Device,
    seed: u64,
    effort: PlaceEffort,
    place_seeds: u32,
    threads: usize,
) -> ImplementOutput {
    let anneal = match effort {
        PlaceEffort::Fast => AnnealConfig {
            moves_per_cell: 12,
            min_moves: 3_000,
            max_moves: 60_000,
            cooling: 0.8,
            batches: 25,
        },
        PlaceEffort::Normal => AnnealConfig::default(),
    };
    let wire = WireModel::for_device(device);
    let trials = place_seeds.max(1);

    if trials == 1 {
        return run_trial(netlist, 0, device, &wire, anneal, seed).out;
    }

    let workers = threads.clamp(1, trials as usize);
    let best = if workers == 1 {
        let mut best: Option<TrialOutcome> = None;
        for idx in 0..trials {
            let t = run_trial(netlist.clone(), idx, device, &wire, anneal, seed);
            if best.as_ref().is_none_or(|b| better(&t, b)) {
                best = Some(t);
            }
        }
        best
    } else {
        let next = AtomicU32::new(0);
        let worker_bests: Vec<Option<TrialOutcome>> = thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut best: Option<TrialOutcome> = None;
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= trials {
                                break;
                            }
                            let t = run_trial(netlist.clone(), idx, device, &wire, anneal, seed);
                            if best.as_ref().is_none_or(|b| better(&t, b)) {
                                best = Some(t);
                            }
                        }
                        best
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("placement trial panicked"))
                .collect()
        });
        worker_bests
            .into_iter()
            .flatten()
            .reduce(|a, b| if better(&b, &a) { b } else { a })
    };
    best.expect("at least one placement trial").out
}
