//! Front-end pass: dataflow splitting (§4.2 case 1), unroll-pragma
//! application and dead-code elimination.

use hlsb_ir::unroll::unroll_loop;
use hlsb_ir::{Design, Loop};
use hlsb_sync::split_dataflow_design;

/// Per-loop front-end provenance: what the unroller and DCE actually did.
/// Stored in the (cached) artifact, so the decision events replayed into
/// the span tracer are identical for cold and cache-hit runs.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopFrontEndInfo {
    /// Kernel name.
    pub kernel: String,
    /// Loop name.
    pub looop: String,
    /// Applied unroll factor (1 = untouched).
    pub unroll: u32,
    /// Instruction count after unrolling, before DCE.
    pub insts_unrolled: usize,
    /// Instructions removed by dead-code elimination.
    pub dce_removed: usize,
}

/// The front-end's output: the effective design plus every loop body
/// after unrolling and DCE, in `unrolled[kernel][loop]` order.
///
/// Clock-independent, so one artifact serves every clock target, option
/// set with the same `sync_pruning` setting, and the lint pre-pass.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontEndArtifact {
    /// The split design, only when dataflow splitting actually changed
    /// it. `None` means the original design is the effective one — the
    /// flow then borrows it instead of cloning (an identity
    /// `split_dataflow_design` and the `sync_pruning = false` path both
    /// land here).
    pub split_design: Option<Design>,
    /// Unrolled + dead-code-eliminated loop bodies of the effective
    /// design.
    pub unrolled: Vec<Vec<Loop>>,
    /// Number of loops the dataflow splitter split (0 when splitting was
    /// off or changed nothing).
    pub loops_split: usize,
    /// Per-loop unroll/DCE provenance, in `unrolled` order (flattened).
    pub loop_info: Vec<LoopFrontEndInfo>,
}

impl FrontEndArtifact {
    /// The design the rest of the pipeline sees: the split one when
    /// splitting changed anything, otherwise the caller's original.
    pub fn design<'a>(&'a self, original: &'a Design) -> &'a Design {
        self.split_design.as_ref().unwrap_or(original)
    }

    /// Whether dataflow splitting changed the design.
    pub fn split_changed(&self) -> bool {
        self.split_design.is_some()
    }
}

/// Runs the front-end. `split` applies §4.2 case 1 (dataflow loop
/// splitting) before unrolling. Infallible: the session verifies the
/// design before calling (cache hits must not skip verification errors).
pub(crate) fn run(design: &Design, split: bool) -> FrontEndArtifact {
    let (split_design, loops_split) = if split {
        let (out, report) = split_dataflow_design(design);
        if report.loops_split > 0 {
            (Some(out), report.loops_split)
        } else {
            (None, 0)
        }
    } else {
        (None, 0)
    };
    let effective = split_design.as_ref().unwrap_or(design);
    let mut loop_info = Vec::new();
    let unrolled = effective
        .kernels
        .iter()
        .map(|kernel| {
            kernel
                .loops
                .iter()
                .map(|lp| {
                    let mut unrolled = unroll_loop(lp).looop;
                    let before = unrolled.body.len();
                    // Dead code elimination, as any HLS front-end performs.
                    let (body, _) = unrolled.body.eliminate_dead();
                    loop_info.push(LoopFrontEndInfo {
                        kernel: kernel.name.clone(),
                        looop: lp.name.clone(),
                        unroll: lp.unroll.max(1),
                        insts_unrolled: before,
                        dce_removed: before - body.len(),
                    });
                    unrolled.body = body;
                    unrolled
                })
                .collect()
        })
        .collect();
    FrontEndArtifact {
        split_design,
        unrolled,
        loops_split,
        loop_info,
    }
}
