//! Front-end pass: dataflow splitting (§4.2 case 1), unroll-pragma
//! application and dead-code elimination.

use hlsb_ir::unroll::unroll_loop;
use hlsb_ir::{Design, Loop};
use hlsb_sync::split_dataflow_design;

/// The front-end's output: the effective design plus every loop body
/// after unrolling and DCE, in `unrolled[kernel][loop]` order.
///
/// Clock-independent, so one artifact serves every clock target, option
/// set with the same `sync_pruning` setting, and the lint pre-pass.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontEndArtifact {
    /// The split design, only when dataflow splitting actually changed
    /// it. `None` means the original design is the effective one — the
    /// flow then borrows it instead of cloning (an identity
    /// `split_dataflow_design` and the `sync_pruning = false` path both
    /// land here).
    pub split_design: Option<Design>,
    /// Unrolled + dead-code-eliminated loop bodies of the effective
    /// design.
    pub unrolled: Vec<Vec<Loop>>,
}

impl FrontEndArtifact {
    /// The design the rest of the pipeline sees: the split one when
    /// splitting changed anything, otherwise the caller's original.
    pub fn design<'a>(&'a self, original: &'a Design) -> &'a Design {
        self.split_design.as_ref().unwrap_or(original)
    }

    /// Whether dataflow splitting changed the design.
    pub fn split_changed(&self) -> bool {
        self.split_design.is_some()
    }
}

/// Runs the front-end. `split` applies §4.2 case 1 (dataflow loop
/// splitting) before unrolling. Infallible: the session verifies the
/// design before calling (cache hits must not skip verification errors).
pub(crate) fn run(design: &Design, split: bool) -> FrontEndArtifact {
    let split_design = if split {
        let (out, report) = split_dataflow_design(design);
        (report.loops_split > 0).then_some(out)
    } else {
        None
    };
    let effective = split_design.as_ref().unwrap_or(design);
    let unrolled = effective
        .kernels
        .iter()
        .map(|kernel| {
            kernel
                .loops
                .iter()
                .map(|lp| {
                    let mut unrolled = unroll_loop(lp).looop;
                    // Dead code elimination, as any HLS front-end performs.
                    let (body, _) = unrolled.body.eliminate_dead();
                    unrolled.body = body;
                    unrolled
                })
                .collect()
        })
        .collect();
    FrontEndArtifact {
        split_design,
        unrolled,
    }
}
