//! The staged pass pipeline behind [`Flow`](crate::Flow).
//!
//! [`FlowSession`](crate::FlowSession) runs these stages in order, each
//! producing a typed artifact consumed by the next:
//!
//! ```text
//! design ──▶ front-end ──▶ schedule ──▶ lower ──▶ implement ──▶ sign-off
//!            (verify,      (baseline    (RTL,     (place ×N,    (STA,
//!             split,        or §4.1     capacity   fanout-opt,   util,
//!             unroll,       broadcast-  check)     retime,       result)
//!             DCE)          aware)                 refine)
//! ```
//!
//! Front-end and schedule artifacts are content-addressed and cached per
//! session (see the `cache` module); lower and implement run per flow. Every
//! stage appends wall time and counters to the run's
//! [`PassTrace`](crate::PassTrace).

pub(crate) mod front_end;
pub(crate) mod implement;
pub(crate) mod lower;
pub(crate) mod schedule;
pub(crate) mod signoff;

pub use front_end::{FrontEndArtifact, LoopFrontEndInfo};
pub use schedule::{LoopScheduleTrace, ScheduleArtifact};
