//! Schedule pass: baseline list scheduling, or the paper's §4.1
//! broadcast-aware scheduling with calibrated delay tables — optionally
//! followed by forced register injection at caller-named stage
//! boundaries ([`crate::options::RegisterInjection`]).

use hlsb_delay::{CalibratedModel, HlsPredictedModel};
use hlsb_fabric::Device;
use hlsb_rtlgen::ScheduledLoop;
use hlsb_sched::{schedule_loop, InjectDecision, MemAccessPlan, SplitDecision};

use crate::options::RegisterInjection;
use crate::passes::FrontEndArtifact;
use hlsb_ir::Design;

/// Per-loop schedule provenance. Stored in the (cached) artifact so the
/// decision events replayed into the span tracer are identical for cold
/// and cache-hit runs.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopScheduleTrace {
    /// Kernel name (effective design).
    pub kernel: String,
    /// Loop name.
    pub looop: String,
    /// Final pipeline depth, cycles.
    pub depth: u32,
    /// Final initiation interval.
    pub ii: u32,
    /// Broadcast-aware fix-point rounds (0 for the baseline scheduler).
    pub rounds: usize,
    /// Chain-split decisions, in decision order (empty for the baseline).
    pub splits: Vec<SplitDecision>,
    /// Forced-injection decisions ([`RegisterInjection`]), in
    /// boundary-then-instruction order (empty when injection is off).
    pub injections: Vec<InjectDecision>,
    /// Violations left to physical optimization after all fixes.
    pub residual: usize,
    /// Extra memory pipeline stages: `(instruction index, stages)`,
    /// sorted by instruction for determinism (the underlying plan is a
    /// `HashMap`). Instruction indices refer to the final (post-
    /// injection) loop body.
    pub mem_stages: Vec<(u32, u32)>,
}

/// The schedule pass output: every loop scheduled, plus the summary
/// numbers the final result reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleArtifact {
    /// Scheduled loops in `loops[kernel][loop]` order of the effective
    /// design.
    pub loops: Vec<Vec<ScheduledLoop>>,
    /// Pipeline depth of each loop, in cycles, flattened in kernel-loop
    /// order.
    pub depths: Vec<u32>,
    /// Registers inserted by scheduling: broadcast-aware chain cuts plus
    /// forced injections.
    pub inserted_regs: usize,
    /// The forced-injection share of [`inserted_regs`]
    /// (0 when [`RegisterInjection::Off`]).
    ///
    /// [`inserted_regs`]: ScheduleArtifact::inserted_regs
    pub injected_regs: usize,
    /// Requested injection boundaries that name a stage of *no* loop in
    /// the design — a configuration error the session rejects with
    /// [`FlowError::BadParameter`](crate::FlowError::BadParameter).
    /// Recorded in the artifact (rather than returned) so cold and
    /// cache-hit paths reject identically.
    pub invalid_boundaries: Vec<u32>,
    /// Per-loop provenance, flattened in kernel-loop order.
    pub loop_traces: Vec<LoopScheduleTrace>,
}

impl ScheduleArtifact {
    /// Static latency estimate of the whole design, in cycles: per loop
    /// `depth.max(1) + (trip − 1) · II` (the schedule's promised minimum,
    /// the same bound [`hlsb_sim::check_latency`] enforces), summed over
    /// a kernel's sequential loops. Kernels overlap under dataflow, so
    /// the design latency is the slowest kernel there and the sum of all
    /// kernels under a sequential top level.
    pub fn latency_cycles(&self, concurrency: hlsb_ir::Concurrency) -> u64 {
        let per_kernel = self.loops.iter().map(|kernel| {
            kernel
                .iter()
                .map(|sl| {
                    let trip = sl.looop.trip_count.max(1);
                    u64::from(sl.schedule.depth.max(1))
                        + (trip - 1) * u64::from(sl.schedule.ii.max(1))
                })
                .sum::<u64>()
        });
        match concurrency {
            hlsb_ir::Concurrency::Dataflow => per_kernel.max().unwrap_or(0),
            hlsb_ir::Concurrency::Sequential => per_kernel.sum(),
        }
    }

    /// Total count of scheduling violations (single-op delays that exceed
    /// the clock budget even at a fresh cycle boundary) across all loops.
    pub fn violations(&self) -> usize {
        self.loops
            .iter()
            .flatten()
            .map(|sl| sl.schedule.violations.len())
            .sum()
    }
}

/// Schedules every loop of the front-end artifact. With
/// `broadcast_aware`, delays come from the device- and seed-calibrated
/// tables and registers are inserted on over-threshold broadcasts;
/// otherwise the stock predicted model is used as-is. With `inject`
/// enabled, each scheduled loop is then rewritten with forced registers
/// at the named stage boundaries and rescheduled
/// ([`hlsb_sched::inject_registers`]).
pub(crate) fn run(
    front_end: &FrontEndArtifact,
    design: &Design,
    device: &Device,
    clock_ns: f64,
    broadcast_aware: bool,
    seed: u64,
    inject: &RegisterInjection,
) -> ScheduleArtifact {
    let predicted = HlsPredictedModel::new();
    let calibrated = broadcast_aware.then(|| CalibratedModel::characterize_analytic(device, seed));

    let mut inserted_regs = 0usize;
    let mut injected_regs = 0usize;
    let mut boundary_in_some_loop: Vec<u32> = Vec::new();
    let mut depths = Vec::new();
    let mut loop_traces = Vec::new();
    let mut loops = Vec::with_capacity(front_end.unrolled.len());
    for (ki, kernel_loops) in front_end.unrolled.iter().enumerate() {
        let kernel_name = design
            .kernels
            .get(ki)
            .map(|k| k.name.clone())
            .unwrap_or_default();
        let mut ks = Vec::with_capacity(kernel_loops.len());
        for unrolled in kernel_loops {
            let (mut sl, rounds, splits, residual) = if let Some(cal) = &calibrated {
                let out = hlsb_sched::broadcast_aware(unrolled, design, &predicted, cal, clock_ns);
                inserted_regs += out.inserted_regs;
                let residual = out.residual_violations.len();
                (
                    ScheduledLoop {
                        looop: out.looop,
                        schedule: out.schedule,
                        mem_plan: out.mem_plan,
                    },
                    out.rounds,
                    out.splits,
                    residual,
                )
            } else {
                let schedule = schedule_loop(unrolled, design, &predicted, clock_ns);
                let residual = schedule.violations.len();
                (
                    ScheduledLoop {
                        looop: unrolled.clone(),
                        schedule,
                        mem_plan: MemAccessPlan::default(),
                    },
                    0,
                    Vec::<SplitDecision>::new(),
                    residual,
                )
            };
            let mut injections = Vec::new();
            if inject.is_enabled() {
                let out = hlsb_sched::inject_registers(
                    &sl.looop,
                    design,
                    &predicted,
                    clock_ns,
                    inject.boundaries(),
                );
                for &b in &out.boundaries_in_range {
                    if !boundary_in_some_loop.contains(&b) {
                        boundary_in_some_loop.push(b);
                    }
                }
                if out.inserted_regs > 0 {
                    // The rewrite renumbered the body: carry the memory
                    // pipelining plan over to the new instruction ids.
                    let mem_plan = MemAccessPlan {
                        extra_stages: sl
                            .mem_plan
                            .extra_stages
                            .iter()
                            .map(|(id, stages)| (out.id_map[id.index()], *stages))
                            .collect(),
                    };
                    inserted_regs += out.inserted_regs;
                    injected_regs += out.inserted_regs;
                    injections = out.decisions;
                    sl = ScheduledLoop {
                        looop: out.looop,
                        schedule: out.schedule,
                        mem_plan,
                    };
                }
            }
            let mut mem_stages: Vec<(u32, u32)> = sl
                .mem_plan
                .extra_stages
                .iter()
                .map(|(id, stages)| (id.0, *stages))
                .collect();
            mem_stages.sort_unstable();
            loop_traces.push(LoopScheduleTrace {
                kernel: kernel_name.clone(),
                looop: sl.looop.name.clone(),
                depth: sl.schedule.depth,
                ii: sl.schedule.ii,
                rounds,
                splits,
                injections,
                residual,
                mem_stages,
            });
            depths.push(sl.schedule.depth);
            ks.push(sl);
        }
        loops.push(ks);
    }
    let invalid_boundaries: Vec<u32> = inject
        .boundaries()
        .iter()
        .copied()
        .filter(|b| !boundary_in_some_loop.contains(b))
        .collect();
    ScheduleArtifact {
        loops,
        depths,
        inserted_regs,
        injected_regs,
        invalid_boundaries,
        loop_traces,
    }
}
