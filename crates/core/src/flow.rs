//! The end-to-end implementation flow.

use crate::error::FlowError;
use crate::options::{OptimizationOptions, PlaceEffort};
use crate::result::{ImplementationResult, Utilization};
use hlsb_delay::{CalibratedModel, HlsPredictedModel};
use hlsb_fabric::{Device, WireModel};
use hlsb_ir::unroll::unroll_loop;
use hlsb_ir::{verify::verify_design, Design};
use hlsb_place::{place_with, AnnealConfig};
use hlsb_rtlgen::{lower_design, ControlStyle, RtlOptions, ScheduledDesign, ScheduledLoop};
use hlsb_sched::{broadcast_aware, schedule_loop, MemAccessPlan};
use hlsb_sync::split_dataflow_design;
use hlsb_timing::{
    optimize_fanout, refine_critical, retime, FanoutOptions, RefineOptions, RetimeOptions,
};

/// Builder for one implementation run: design → schedule → RTL → place →
/// timing, with the paper's optimizations toggled by
/// [`OptimizationOptions`].
#[derive(Debug, Clone)]
pub struct Flow {
    design: Design,
    device: Device,
    clock_mhz: f64,
    options: OptimizationOptions,
    seed: u64,
    effort: PlaceEffort,
    place_seeds: u32,
    lint: bool,
}

impl Flow {
    /// Starts a flow for a design with default settings (VU9P, 300 MHz
    /// target, no optimizations, seed 1).
    pub fn new(design: Design) -> Self {
        Flow {
            design,
            device: Device::ultrascale_plus_vu9p(),
            clock_mhz: 300.0,
            options: OptimizationOptions::none(),
            seed: 1,
            effort: PlaceEffort::Normal,
            place_seeds: 3,
            lint: false,
        }
    }

    /// Sets the target device.
    pub fn device(mut self, device: Device) -> Self {
        self.device = device;
        self
    }

    /// Sets the clock target in MHz.
    pub fn clock_mhz(mut self, mhz: f64) -> Self {
        self.clock_mhz = mhz;
        self
    }

    /// Selects the optimizations to apply.
    pub fn options(mut self, options: OptimizationOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the random seed (placement and characterization noise).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the placement effort.
    pub fn place_effort(mut self, effort: PlaceEffort) -> Self {
        self.effort = effort;
        self
    }

    /// Number of placement seeds tried (the best timing wins), as
    /// multi-seed implementation runs do in production flows. Minimum 1.
    pub fn place_seeds(mut self, n: u32) -> Self {
        self.place_seeds = n.max(1);
        self
    }

    /// Enables the static broadcast lint (`hlsb-lint`) as a pre-pass.
    /// The report lands in [`ImplementationResult::lint`]; findings can
    /// then be cross-checked against the post-route critical path with
    /// [`hlsb_lint::cross_check`]. Off by default — linting re-runs the
    /// unroll/schedule pipeline in report-only mode, roughly doubling
    /// front-end time.
    pub fn lint(mut self, enabled: bool) -> Self {
        self.lint = enabled;
        self
    }

    /// Runs the flow.
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] for invalid IR, nonsensical parameters, or
    /// designs that do not fit the device.
    pub fn run(&self) -> Result<ImplementationResult, FlowError> {
        self.run_detailed().map(|(r, _, _)| r)
    }

    /// Runs the flow and also returns the final netlist and placement —
    /// for Verilog export, timing-path reports and custom analyses.
    ///
    /// # Errors
    ///
    /// Same as [`Flow::run`].
    pub fn run_detailed(
        &self,
    ) -> Result<
        (
            ImplementationResult,
            hlsb_netlist::Netlist,
            hlsb_place::Placement,
        ),
        FlowError,
    > {
        if !(self.clock_mhz.is_finite() && self.clock_mhz > 0.0) {
            return Err(FlowError::BadParameter {
                what: format!("clock target {} MHz", self.clock_mhz),
            });
        }
        verify_design(&self.design)?;
        let clock_ns = 1000.0 / self.clock_mhz;

        // Opt-in static broadcast pre-pass: report-only, on the design as
        // written (before any splitting/unrolling the flow itself does).
        let lint = self.lint.then(|| {
            hlsb_lint::lint_with(
                &self.design,
                &self.device,
                hlsb_lint::LintConfig {
                    clock_mhz: self.clock_mhz,
                    seed: self.seed,
                    ..hlsb_lint::LintConfig::default()
                },
            )
        });

        // §4.2 case 1: split independent dataflow flows before scheduling.
        let design = if self.options.sync_pruning {
            split_dataflow_design(&self.design).0
        } else {
            self.design.clone()
        };

        // Delay models.
        let predicted = HlsPredictedModel::new();
        let calibrated = if self.options.broadcast_aware {
            Some(CalibratedModel::characterize_analytic(
                &self.device,
                self.seed,
            ))
        } else {
            None
        };

        // Schedule every loop (applying unroll pragmas).
        let mut inserted_regs = 0usize;
        let mut depths = Vec::new();
        let mut loops = Vec::with_capacity(design.kernels.len());
        for kernel in &design.kernels {
            let mut ks = Vec::with_capacity(kernel.loops.len());
            for lp in &kernel.loops {
                let mut unrolled = unroll_loop(lp).looop;
                // Dead code elimination, as any HLS front-end performs.
                let (body, _) = unrolled.body.eliminate_dead();
                unrolled.body = body;
                let sl = if let Some(cal) = &calibrated {
                    let out = broadcast_aware(&unrolled, &design, &predicted, cal, clock_ns);
                    inserted_regs += out.inserted_regs;
                    ScheduledLoop {
                        looop: out.looop,
                        schedule: out.schedule,
                        mem_plan: out.mem_plan,
                    }
                } else {
                    let schedule = schedule_loop(&unrolled, &design, &predicted, clock_ns);
                    ScheduledLoop {
                        looop: unrolled,
                        schedule,
                        mem_plan: MemAccessPlan::default(),
                    }
                };
                depths.push(sl.schedule.depth);
                ks.push(sl);
            }
            loops.push(ks);
        }

        // RTL generation.
        let rtl_options = RtlOptions {
            control: if self.options.skid_buffer {
                ControlStyle::Skid {
                    min_area: self.options.min_area_skid,
                }
            } else {
                ControlStyle::Stall
            },
            sync_pruning: self.options.sync_pruning,
        };
        let sd = ScheduledDesign { design, loops };
        let lowered = lower_design(&sd, &rtl_options, &predicted);
        let netlist = lowered.netlist;
        netlist.validate()?;

        // Capacity check.
        let stats = netlist.stats();
        let res = self.device.resources;
        for (used, cap, name) in [
            (stats.luts, res.luts, "LUT"),
            (stats.ffs, res.ffs, "FF"),
            (stats.brams, res.brams, "BRAM"),
            (stats.dsps, res.dsps, "DSP"),
        ] {
            if used > cap {
                return Err(FlowError::DoesNotFit {
                    what: format!("{name}: {used} needed, {cap} available"),
                });
            }
        }
        let site_budget = u64::from(self.device.grid_w) * u64::from(self.device.grid_h) / 2;
        if netlist.cell_count() as u64 >= site_budget {
            return Err(FlowError::DoesNotFit {
                what: format!(
                    "{} cells exceed the placement budget of {site_budget} sites",
                    netlist.cell_count()
                ),
            });
        }

        // Physical flow: place, fanout-optimize, retime, analyze.
        let anneal = match self.effort {
            PlaceEffort::Fast => AnnealConfig {
                moves_per_cell: 12,
                min_moves: 3_000,
                max_moves: 60_000,
                cooling: 0.8,
                batches: 25,
            },
            PlaceEffort::Normal => AnnealConfig::default(),
        };
        let wire = WireModel::for_device(&self.device);
        // Multi-seed implementation: place/optimize with several seeds and
        // keep the best-timing result (as production flows do).
        #[allow(clippy::type_complexity)]
        let mut best: Option<(
            f64,
            hlsb_netlist::Netlist,
            hlsb_place::Placement,
            hlsb_timing::TimingReport,
            hlsb_timing::fanout_opt::FanoutOptReport,
            hlsb_timing::retime::RetimeReport,
        )> = None;
        for trial in 0..self.place_seeds {
            let mut nl = netlist.clone();
            let seed = self.seed.wrapping_add(u64::from(trial) * 0x9E37);
            let mut placement = place_with(&nl, &self.device, seed, anneal);
            let fo = optimize_fanout(&mut nl, &mut placement, FanoutOptions::default());
            let (rt, _) = retime(&mut nl, &mut placement, &wire, RetimeOptions::default());
            // Timing-driven refinement, as physical synthesis would run.
            let (_refine, timing) =
                refine_critical(&nl, &mut placement, &wire, RefineOptions::default());
            if best.as_ref().is_none_or(|b| timing.period_ns < b.0) {
                best = Some((timing.period_ns, nl, placement, timing, fo, rt));
            }
        }
        let (_, netlist, placement, timing, fo, rt) = best.expect("at least one placement trial");
        let critical_cells: Vec<String> = timing
            .critical_path
            .iter()
            .map(|&c| {
                let cell = netlist.cell(c);
                format!("{}:{}", cell.kind, cell.name)
            })
            .collect();

        let stats = netlist.stats();
        let (lut_pct, ff_pct, bram_pct, dsp_pct) =
            stats.utilization(res.luts, res.ffs, res.brams, res.dsps);

        Ok((
            ImplementationResult {
                fmax_mhz: timing.fmax_mhz,
                period_ns: timing.period_ns,
                utilization: Utilization {
                    lut_pct,
                    ff_pct,
                    bram_pct,
                    dsp_pct,
                },
                stats,
                timing,
                lower_info: lowered.info,
                schedule_depths: depths,
                inserted_regs,
                duplicated_regs: fo.duplicated_registers,
                retime_moves: rt.moves,
                critical_cells,
                lint,
            },
            netlist,
            placement,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsb_ir::builder::DesignBuilder;
    use hlsb_ir::DataType;

    fn unrolled_broadcast(unroll: u32) -> Design {
        let mut b = DesignBuilder::new("bc");
        let fin = b.fifo("in", DataType::Int(32), 2);
        let fout = b.fifo("out", DataType::Int(32), 2);
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("body", 1024, 1);
        l.set_unroll(unroll);
        let src = l.invariant_input("source", DataType::Int(32));
        let x = l.fifo_read(fin, DataType::Int(32));
        let s = l.sub(x, src);
        let t = l.abs(s);
        let m = l.min(t, x);
        l.fifo_write(fout, m);
        l.finish();
        k.finish();
        b.finish().expect("valid")
    }

    fn run(d: &Design, opts: OptimizationOptions) -> ImplementationResult {
        Flow::new(d.clone())
            .options(opts)
            .place_effort(PlaceEffort::Fast)
            .seed(7)
            .run()
            .expect("flow succeeds")
    }

    #[test]
    fn flow_runs_end_to_end() {
        let d = unrolled_broadcast(8);
        let r = run(&d, OptimizationOptions::none());
        assert!(r.fmax_mhz > 50.0 && r.fmax_mhz < 1000.0, "{}", r.fmax_mhz);
        assert!(r.stats.luts > 0);
        assert!(r.utilization.lut_pct > 0.0);
    }

    #[test]
    fn optimizations_help_broadcast_design() {
        let d = unrolled_broadcast(64);
        let base = run(&d, OptimizationOptions::none());
        let opt = run(&d, OptimizationOptions::all());
        assert!(
            opt.fmax_mhz > base.fmax_mhz,
            "opt {} <= base {}",
            opt.fmax_mhz,
            base.fmax_mhz
        );
        assert!(opt.inserted_regs > 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let d = unrolled_broadcast(16);
        let a = run(&d, OptimizationOptions::all());
        let b = run(&d, OptimizationOptions::all());
        assert_eq!(a.fmax_mhz, b.fmax_mhz);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn lint_pre_pass_is_opt_in_and_attached() {
        let d = unrolled_broadcast(256);
        let silent = run(&d, OptimizationOptions::none());
        assert!(silent.lint.is_none(), "lint must be opt-in");

        let r = Flow::new(d)
            .place_effort(PlaceEffort::Fast)
            .place_seeds(1)
            .lint(true)
            .run()
            .expect("flow succeeds");
        let report = r.lint.expect("lint report attached");
        assert_eq!(report.design, "bc");
        // A 256-way invariant broadcast must trip the data rule.
        assert!(report.has_rule("BA01"), "{}", report.to_table());
        // The report is renderable in all three formats.
        assert!(!report.to_table().is_empty());
        assert!(!report.to_jsonl().is_empty());
        assert!(report.to_sarif().contains("\"version\":\"2.1.0\""));
    }

    #[test]
    fn bad_clock_is_rejected() {
        let d = unrolled_broadcast(2);
        let err = Flow::new(d).clock_mhz(0.0).run().unwrap_err();
        assert!(matches!(err, FlowError::BadParameter { .. }));
    }

    #[test]
    fn oversized_design_reports_does_not_fit() {
        // A buffer far beyond the device's BRAM capacity.
        let mut b = DesignBuilder::new("huge");
        let arr = b.array(
            "huge",
            DataType::Int(64),
            16_000_000,
            hlsb_ir::Partition::None,
        );
        let fin = b.fifo("in", DataType::Int(64), 2);
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("fill", 1 << 24, 1);
        let i = l.indvar("i");
        let v = l.fifo_read(fin, DataType::Int(64));
        l.store(arr, i, v);
        l.finish();
        k.finish();
        let d = b.finish().expect("valid");
        let err = Flow::new(d).run().unwrap_err();
        assert!(matches!(err, FlowError::DoesNotFit { .. }), "{err}");
    }
}
