//! The end-to-end implementation flow: a builder over the staged pass
//! pipeline (see [`crate::passes`] and [`FlowSession`]).

use crate::error::FlowError;
use crate::options::{OptimizationOptions, Partitioning, PlaceEffort, RegisterInjection};
use crate::result::ImplementationResult;
use crate::session::FlowSession;
use hlsb_fabric::Device;
use hlsb_ir::Design;

/// Builder for one implementation run: design → schedule → RTL → place →
/// timing, with the paper's optimizations toggled by
/// [`OptimizationOptions`].
///
/// Each `run` call executes the staged pipeline front-end → schedule →
/// lower → implement → sign-off; the per-pass wall times and counters
/// land in [`ImplementationResult::trace`]. `run` uses a throwaway
/// [`FlowSession`] — to share cached front-end/schedule artifacts across
/// several runs (variant sweeps over one design) or run flows in
/// parallel, create a session and pass flows to it instead.
#[derive(Debug, Clone)]
pub struct Flow {
    pub(crate) design: Design,
    pub(crate) device: Device,
    pub(crate) clock_mhz: f64,
    pub(crate) options: OptimizationOptions,
    pub(crate) seed: u64,
    pub(crate) effort: PlaceEffort,
    pub(crate) place_seeds: u32,
    pub(crate) partitions: Partitioning,
    pub(crate) inject: RegisterInjection,
    pub(crate) lint: bool,
    pub(crate) verify: bool,
    pub(crate) trace: bool,
}

impl Flow {
    /// Starts a flow for a design with default settings (VU9P, 300 MHz
    /// target, no optimizations, seed 1).
    pub fn new(design: Design) -> Self {
        Flow {
            design,
            device: Device::ultrascale_plus_vu9p(),
            clock_mhz: 300.0,
            options: OptimizationOptions::none(),
            seed: 1,
            effort: PlaceEffort::Normal,
            place_seeds: 3,
            partitions: Partitioning::Off,
            inject: RegisterInjection::Off,
            lint: false,
            verify: false,
            trace: false,
        }
    }

    /// Sets the target device.
    pub fn device(mut self, device: Device) -> Self {
        self.device = device;
        self
    }

    /// Sets the clock target in MHz.
    pub fn clock_mhz(mut self, mhz: f64) -> Self {
        self.clock_mhz = mhz;
        self
    }

    /// Selects the optimizations to apply.
    pub fn options(mut self, options: OptimizationOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the random seed (placement and characterization noise).
    /// Multi-seed trials derive per-trial seeds as decorrelated streams
    /// of this value ([`hlsb_rng::derive_seed`]); stream 0 is the seed
    /// itself.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the placement effort.
    pub fn place_effort(mut self, effort: PlaceEffort) -> Self {
        self.effort = effort;
        self
    }

    /// Number of placement seeds tried (the best timing wins), as
    /// multi-seed implementation runs do in production flows. Minimum 1.
    /// Trials run in parallel when the session's thread budget allows;
    /// the winner is identical either way.
    pub fn place_seeds(mut self, n: u32) -> Self {
        self.place_seeds = n.max(1);
        self
    }

    /// Selects island partitioning for the implement stage
    /// ([`Partitioning`], default [`Partitioning::Off`]). With
    /// partitioning on, the netlist is cut at its dataflow seams, islands
    /// are annealed in parallel in reserved device regions, and every
    /// inter-island net is registered — with the extra channel latency
    /// provisioned in the skid-buffer contract. The result is a pure
    /// function of the flow configuration, never of the worker thread
    /// count; designs that cannot be partitioned (monolithic and tiny, or
    /// not enough device columns) deterministically fall back to flat
    /// placement.
    pub fn partitions(mut self, partitions: Partitioning) -> Self {
        self.partitions = partitions;
        self
    }

    /// Forces extra pipeline registers at the named stage boundaries
    /// ([`RegisterInjection`], default [`RegisterInjection::Off`]). The
    /// injection runs after baseline or broadcast-aware scheduling:
    /// every value crossing a named boundary of the pre-injection
    /// schedule through combinational wires is routed through a `Reg`
    /// module and the loop is rescheduled, trading pipeline depth (the
    /// added latency is visible to probes and the timed simulator) for
    /// shorter post-lowering chains. A boundary no loop of the design
    /// has is rejected with [`FlowError::BadParameter`]. Participates in
    /// [`config_key`](Flow::config_key) and the schedule-stage cache
    /// key.
    pub fn inject(mut self, inject: RegisterInjection) -> Self {
        self.inject = inject;
        self
    }

    /// Enables the static broadcast lint (`hlsb-lint`) as a pre-pass.
    /// The report lands in [`ImplementationResult::lint`]; findings can
    /// then be cross-checked against the post-route critical path with
    /// [`hlsb_lint::cross_check`]. Off by default. The lint borrows the
    /// flow's own front-end artifacts (unroll + baseline schedule)
    /// instead of re-deriving them — see the `lint` pass record in
    /// [`ImplementationResult::trace`].
    pub fn lint(mut self, enabled: bool) -> Self {
        self.lint = enabled;
        self
    }

    /// Enables the static verifier (`hlsb-verify`) as a pre-gate. The
    /// dataflow network analysis runs on the design as written before
    /// any pipeline stage, and the schedule/lowering contracts are
    /// audited as the artifacts appear; any `Error`-severity finding
    /// aborts the flow with [`FlowError::VerifyRejected`] carrying the
    /// full report. Clean runs attach the (possibly warning-bearing)
    /// report to [`ImplementationResult::verify`] /
    /// [`ProbeOutcome::verify`](crate::ProbeOutcome::verify). Off by
    /// default. Like [`lint`](Flow::lint) and [`trace`](Flow::trace),
    /// the flag never changes the implementation and is excluded from
    /// [`config_key`](Flow::config_key).
    pub fn verify(mut self, enabled: bool) -> Self {
        self.verify = enabled;
        self
    }

    /// Enables hierarchical span tracing with decision provenance
    /// ([`hlsb_trace`]): the run records a span per pipeline stage (and
    /// per placement trial) plus the individual optimization decisions —
    /// chain splits, done-signal pruning, skid-buffer placement — and
    /// attaches the tree to
    /// [`ImplementationResult::span_tree`](crate::ImplementationResult::span_tree)
    /// (also [`SimulationOutcome`](crate::SimulationOutcome) and
    /// [`ProbeOutcome`](crate::ProbeOutcome)). The flat
    /// [`PassTrace`](crate::PassTrace) is then *derived* from the tree, so
    /// the two views cannot drift. Off by default: the disabled collector
    /// reads no clock and allocates nothing, and tracing never affects
    /// the implementation result (it is excluded from [`config_key`]).
    ///
    /// [`config_key`]: Flow::config_key
    pub fn trace(mut self, enabled: bool) -> Self {
        self.trace = enabled;
        self
    }

    /// Content-addressed key of this flow's full configuration: design,
    /// device, clock target, optimization options, seed, placement effort
    /// and trial count. Two flows with equal keys produce identical
    /// [`ImplementationResult`]s (the pipeline is deterministic), so the
    /// key is safe to use for result deduplication and persistent stores
    /// — `hlsb-dse` keys its JSONL result store with it. Stable across
    /// processes and platforms (FNV-1a over the configuration's `Debug`
    /// form, like the session's stage-artifact cache).
    pub fn config_key(&self) -> u64 {
        crate::cache::combine(&[
            crate::cache::hash_debug(&self.design),
            crate::cache::hash_debug(&self.device),
            self.clock_mhz.to_bits(),
            crate::cache::hash_debug(&self.options),
            self.seed,
            crate::cache::hash_debug(&self.effort),
            u64::from(self.place_seeds),
            crate::cache::hash_debug(&self.partitions),
            crate::cache::hash_debug(&self.inject),
        ])
    }

    /// Digest of a finished run as a persistent-store record
    /// ([`hlsb_store::ResultRecord`]), keyed by
    /// [`config_key`](Flow::config_key). The record carries everything a
    /// warm compile-farm lookup needs to answer this configuration again
    /// without re-running the pipeline; `label` is the human-readable
    /// configuration name (the key stays authoritative) and `wall_ms`
    /// the evaluation's wall-clock cost (the one volatile field).
    pub fn store_record(
        &self,
        label: &str,
        result: &ImplementationResult,
        wall_ms: f64,
    ) -> hlsb_store::ResultRecord {
        hlsb_store::ResultRecord {
            key: self.config_key(),
            design: self.design.name.clone(),
            label: label.to_string(),
            fmax_mhz: result.fmax_mhz,
            period_ns: result.period_ns,
            latency_cycles: result.latency_cycles,
            luts: result.stats.luts,
            ffs: result.stats.ffs,
            brams: result.stats.brams,
            dsps: result.stats.dsps,
            inserted_regs: result.inserted_regs as u64,
            duplicated_regs: result.duplicated_regs as u64,
            retime_moves: result.retime_moves as u64,
            wall_ms,
        }
    }

    /// Runs the flow.
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] for invalid IR, nonsensical parameters, or
    /// designs that do not fit the device.
    pub fn run(&self) -> Result<ImplementationResult, FlowError> {
        self.run_detailed().map(|(r, _, _)| r)
    }

    /// Runs the flow and also returns the final netlist and placement —
    /// for Verilog export, timing-path reports and custom analyses.
    ///
    /// # Errors
    ///
    /// Same as [`Flow::run`].
    pub fn run_detailed(
        &self,
    ) -> Result<
        (
            ImplementationResult,
            hlsb_netlist::Netlist,
            hlsb_place::Placement,
        ),
        FlowError,
    > {
        FlowSession::new().run_detailed(self)
    }

    /// Simulates the flow instead of implementing it: the untimed golden
    /// evaluator differenced against a cycle-accurate run of the
    /// scheduled design, with this flow's options mapped onto the control
    /// model. Loops are capped at `iters_cap` iterations. Uses a
    /// throwaway [`FlowSession`] — to share cached front-end/schedule
    /// artifacts with implementation runs, call
    /// [`FlowSession::simulate`] on a shared session instead.
    ///
    /// # Errors
    ///
    /// Same as [`Flow::run`] for invalid IR or parameters; trace
    /// divergence is reported by
    /// [`SimulationOutcome::check`](crate::SimulationOutcome::check), not
    /// as a `FlowError`.
    pub fn simulate(
        &self,
        stim: &hlsb_sim::Stimulus,
        iters_cap: u64,
    ) -> Result<crate::SimulationOutcome, FlowError> {
        FlowSession::new().simulate(self, stim, iters_cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsb_ir::builder::DesignBuilder;
    use hlsb_ir::DataType;

    fn unrolled_broadcast(unroll: u32) -> Design {
        let mut b = DesignBuilder::new("bc");
        let fin = b.fifo("in", DataType::Int(32), 2);
        let fout = b.fifo("out", DataType::Int(32), 2);
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("body", 1024, 1);
        l.set_unroll(unroll);
        let src = l.invariant_input("source", DataType::Int(32));
        let x = l.fifo_read(fin, DataType::Int(32));
        let s = l.sub(x, src);
        let t = l.abs(s);
        let m = l.min(t, x);
        l.fifo_write(fout, m);
        l.finish();
        k.finish();
        b.finish().expect("valid")
    }

    fn run(d: &Design, opts: OptimizationOptions) -> ImplementationResult {
        Flow::new(d.clone())
            .options(opts)
            .place_effort(PlaceEffort::Fast)
            .seed(7)
            .run()
            .expect("flow succeeds")
    }

    #[test]
    fn flow_runs_end_to_end() {
        let d = unrolled_broadcast(8);
        let r = run(&d, OptimizationOptions::none());
        assert!(r.fmax_mhz > 50.0 && r.fmax_mhz < 1000.0, "{}", r.fmax_mhz);
        assert!(r.stats.luts > 0);
        assert!(r.utilization.lut_pct > 0.0);
    }

    #[test]
    fn optimizations_help_broadcast_design() {
        let d = unrolled_broadcast(64);
        let base = run(&d, OptimizationOptions::none());
        let opt = run(&d, OptimizationOptions::all());
        assert!(
            opt.fmax_mhz > base.fmax_mhz,
            "opt {} <= base {}",
            opt.fmax_mhz,
            base.fmax_mhz
        );
        assert!(opt.inserted_regs > 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let d = unrolled_broadcast(16);
        let a = run(&d, OptimizationOptions::all());
        let b = run(&d, OptimizationOptions::all());
        assert_eq!(a.fmax_mhz, b.fmax_mhz);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn every_pass_is_traced() {
        let d = unrolled_broadcast(8);
        let r = run(&d, OptimizationOptions::none());
        for pass in ["front-end", "schedule", "lower", "implement", "sign-off"] {
            assert!(
                r.trace.records.iter().any(|rec| rec.pass == pass),
                "missing {pass} in:\n{}",
                r.trace
            );
        }
        assert_eq!(r.trace.counter("front-end", "executions"), Some(1));
        assert_eq!(r.trace.counter("implement", "trials"), Some(3));
        assert!(r.trace.counter("lower", "cells").unwrap() > 0);
    }

    #[test]
    fn lint_pre_pass_is_opt_in_and_attached() {
        let d = unrolled_broadcast(256);
        let silent = run(&d, OptimizationOptions::none());
        assert!(silent.lint.is_none(), "lint must be opt-in");

        let r = Flow::new(d)
            .place_effort(PlaceEffort::Fast)
            .place_seeds(1)
            .lint(true)
            .run()
            .expect("flow succeeds");

        // The lint borrowed the flow's front-end artifacts instead of
        // re-running unroll/schedule: one front-end execution total.
        assert_eq!(r.trace.counter("front-end", "executions"), Some(1));
        assert_eq!(r.trace.counter("lint", "front-end-reused"), Some(1));

        let report = r.lint.expect("lint report attached");
        assert_eq!(report.design, "bc");
        // A 256-way invariant broadcast must trip the data rule.
        assert!(report.has_rule("BA01"), "{}", report.to_table());
        // The report is renderable in all three formats.
        assert!(!report.to_table().is_empty());
        assert!(!report.to_jsonl().is_empty());
        assert!(report.to_sarif().contains("\"version\":\"2.1.0\""));
    }

    #[test]
    fn verify_pre_gate_is_opt_in_attaches_and_rejects() {
        let d = unrolled_broadcast(8);
        let silent = run(&d, OptimizationOptions::none());
        assert!(silent.verify.is_none(), "verify must be opt-in");

        // A clean design passes the gate with the report attached.
        let session = crate::FlowSession::new();
        let flow = Flow::new(d)
            .options(OptimizationOptions::all())
            .place_effort(PlaceEffort::Fast)
            .place_seeds(1)
            .verify(true);
        let probe = session.probe(&flow).expect("clean design probes");
        let report = probe.verify.expect("probe honours Flow::verify");
        assert!(report.is_clean(), "{}", report.to_table());
        let r = session.run(&flow).expect("clean design implements");
        let report = r.verify.expect("verify report attached");
        assert_eq!(report.tool, "hlsb-verify");
        assert!(report.is_clean(), "{}", report.to_table());
        // Both verify stages left pass records.
        assert_eq!(r.trace.counter("verify.network", "errors"), Some(0));
        assert_eq!(r.trace.counter("verify.contracts", "errors"), Some(0));

        // A two-producer channel is an Error: the flow is rejected
        // before any pipeline stage runs.
        let mut b = DesignBuilder::new("double_writer");
        let ch = b.fifo("ch", DataType::Int(32), 2);
        b.dataflow();
        for name in ["pa", "pb"] {
            let mut k = b.kernel(name);
            let mut l = k.pipelined_loop("w", 16, 1);
            let v = l.indvar("i");
            l.fifo_write(ch, v);
            l.finish();
            k.finish();
        }
        let dirty = b.finish().expect("structurally valid IR");
        let err = Flow::new(dirty).verify(true).run().unwrap_err();
        match err {
            FlowError::VerifyRejected { report } => {
                assert!(report.has_rule("VN01"), "{}", report.to_table());
            }
            other => panic!("expected VerifyRejected, got {other}"),
        }
    }

    #[test]
    fn register_injection_pays_latency_and_rejects_bad_boundaries() {
        let d = unrolled_broadcast(8);
        let session = crate::FlowSession::new();
        let base = Flow::new(d.clone())
            .place_effort(PlaceEffort::Fast)
            .place_seeds(1);
        let inj = base.clone().inject(RegisterInjection::at(vec![1]));
        let pb = session.probe(&base).expect("baseline probes");
        let pi = session.probe(&inj).expect("injected flow probes");
        assert!(
            pi.inserted_regs > pb.inserted_regs,
            "boundary 1 must force at least one register"
        );
        assert!(
            pi.latency_cycles > pb.latency_cycles,
            "forced registers must pay real latency ({} vs {})",
            pi.latency_cycles,
            pb.latency_cycles
        );
        // The injected flow still implements, simulates and verifies.
        let r = session
            .run(&inj.clone().verify(true))
            .expect("injected flow implements");
        assert_eq!(r.latency_cycles, pi.latency_cycles);
        assert!(r.verify.expect("verify report").is_clean());
        let stim = hlsb_sim::Stimulus::seeded(&d, 1, 8);
        let sim = session.simulate(&inj, &stim, 8).expect("simulates");
        sim.check().expect("injected pipeline must match golden");

        // A boundary past every loop's depth is a typed error, for
        // probe, run and simulate alike — and again on the cached path.
        let bad = base.clone().inject(RegisterInjection::at(vec![250]));
        for _ in 0..2 {
            let err = session.probe(&bad).unwrap_err();
            assert!(matches!(err, FlowError::BadParameter { .. }), "{err}");
            assert!(err.to_string().contains("boundary 250"), "{err}");
        }
        let err = session.run(&bad).unwrap_err();
        assert!(matches!(err, FlowError::BadParameter { .. }));
        let err = session.simulate(&bad, &stim, 8).unwrap_err();
        assert!(matches!(err, FlowError::BadParameter { .. }));
    }

    #[test]
    fn bad_clock_is_rejected() {
        let d = unrolled_broadcast(2);
        let err = Flow::new(d.clone()).clock_mhz(0.0).run().unwrap_err();
        assert!(matches!(err, FlowError::BadParameter { .. }));
        let stim = hlsb_sim::Stimulus::seeded(&d, 1, 4);
        let err = Flow::new(d).clock_mhz(0.0).simulate(&stim, 4).unwrap_err();
        assert!(matches!(err, FlowError::BadParameter { .. }));
    }

    #[test]
    fn simulate_checks_out_and_shares_artifacts_across_a_clock_sweep() {
        let d = unrolled_broadcast(8);
        let stim = hlsb_sim::Stimulus::seeded(&d, 1, 16);
        let session = crate::FlowSession::new();
        for (i, clock) in [250.0, 300.0, 350.0].into_iter().enumerate() {
            let flow = Flow::new(d.clone())
                .clock_mhz(clock)
                .options(OptimizationOptions::all());
            let sim = session.simulate(&flow, &stim, 16).expect("valid design");
            sim.check().expect("optimized variant must match golden");
            assert!(!sim.golden.is_empty());
            // Clock-independent front-end keying: only the first sweep
            // point builds the unroll, later ones hit the cache.
            let expect_hit = u64::from(i > 0);
            assert_eq!(
                sim.trace.counter("front-end", "cache-hits"),
                Some(expect_hit)
            );
            assert_eq!(sim.trace.counter("schedule", "executions"), Some(1));
            assert_eq!(sim.trace.counter("simulate", "trace-match"), Some(1));
            assert_eq!(sim.trace.counter("simulate", "finished"), Some(1));
        }

        // Implementing the same variant afterwards re-runs neither
        // cached stage.
        let flow = Flow::new(d)
            .clock_mhz(300.0)
            .options(OptimizationOptions::all())
            .place_effort(PlaceEffort::Fast)
            .place_seeds(1);
        let r = session.run(&flow).expect("flow succeeds");
        assert_eq!(r.trace.counter("front-end", "executions"), Some(0));
        assert_eq!(r.trace.counter("schedule", "executions"), Some(0));
    }

    #[test]
    fn config_key_distinguishes_every_knob() {
        let d = unrolled_broadcast(4);
        let base = Flow::new(d.clone());
        let mut keys = std::collections::HashSet::new();
        assert!(keys.insert(base.config_key()));
        assert!(keys.insert(base.clone().clock_mhz(350.0).config_key()));
        assert!(keys.insert(
            base.clone()
                .options(OptimizationOptions::all())
                .config_key()
        ));
        assert!(keys.insert(base.clone().seed(2).config_key()));
        assert!(keys.insert(base.clone().place_effort(PlaceEffort::Fast).config_key()));
        assert!(keys.insert(base.clone().place_seeds(1).config_key()));
        assert!(keys.insert(base.clone().partitions(Partitioning::Auto).config_key()));
        assert!(keys.insert(base.clone().partitions(Partitioning::Fixed(2)).config_key()));
        assert!(keys.insert(
            base.clone()
                .inject(RegisterInjection::at(vec![1]))
                .config_key()
        ));
        assert!(keys.insert(
            base.clone()
                .inject(RegisterInjection::at(vec![1, 2]))
                .config_key()
        ));
        assert!(keys.insert(Flow::new(unrolled_broadcast(8)).config_key()));
        // ... and is stable for an identical configuration.
        assert_eq!(base.config_key(), Flow::new(d).config_key());
    }

    #[test]
    fn probe_shares_artifacts_with_full_runs_and_reports_latency() {
        let d = unrolled_broadcast(16);
        let session = crate::FlowSession::new();
        let flow = Flow::new(d)
            .options(OptimizationOptions::all())
            .place_effort(PlaceEffort::Fast)
            .place_seeds(1)
            .lint(true);

        let probe = session.probe(&flow).expect("valid design");
        assert_eq!(probe.trace.counter("front-end", "executions"), Some(1));
        assert!(probe.latency_cycles > 0);
        assert!(probe.instructions > 0);
        assert!(!probe.schedule_depths.is_empty());
        assert!(probe.lint.is_some(), "probe honours Flow::lint");
        // No back-end stages ran.
        assert!(probe.trace.records.iter().all(|r| r.pass != "implement"));

        // The full run hits every artifact the probe built.
        let r = session.run(&flow).expect("flow succeeds");
        assert_eq!(r.trace.counter("front-end", "executions"), Some(0));
        assert_eq!(r.trace.counter("schedule", "executions"), Some(0));
        // The probe's static latency is the full run's latency.
        assert_eq!(probe.latency_cycles, r.latency_cycles);
        assert_eq!(probe.schedule_depths, r.schedule_depths);
        assert_eq!(probe.inserted_regs, r.inserted_regs);

        // Per-stage cache stats are consistent with the totals.
        let by_stage = session.cache_stats_by_stage();
        assert_eq!(by_stage.total(), session.cache_stats());
        assert!(by_stage.front_end.hits >= 1);
        assert!(by_stage.schedule.hits >= 1);
    }

    #[test]
    fn oversized_design_reports_does_not_fit() {
        // A buffer far beyond the device's BRAM capacity.
        let mut b = DesignBuilder::new("huge");
        let arr = b.array(
            "huge",
            DataType::Int(64),
            16_000_000,
            hlsb_ir::Partition::None,
        );
        let fin = b.fifo("in", DataType::Int(64), 2);
        let mut k = b.kernel("top");
        let mut l = k.pipelined_loop("fill", 1 << 24, 1);
        let i = l.indvar("i");
        let v = l.fifo_read(fin, DataType::Int(64));
        l.store(arr, i, v);
        l.finish();
        k.finish();
        let d = b.finish().expect("valid");
        let err = Flow::new(d).run().unwrap_err();
        assert!(matches!(err, FlowError::DoesNotFit { .. }), "{err}");
    }
}
