//! Implementation results.

use crate::trace::PassTrace;
use hlsb_netlist::Stats;
use hlsb_rtlgen::LowerInfo;
use hlsb_timing::TimingReport;
use std::fmt;

/// Post-implementation resource utilization, as percentages of the target
/// device (the format of the paper's Table 1).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Utilization {
    /// LUT utilization, percent.
    pub lut_pct: f64,
    /// Flip-flop utilization, percent.
    pub ff_pct: f64,
    /// BRAM utilization, percent.
    pub bram_pct: f64,
    /// DSP utilization, percent.
    pub dsp_pct: f64,
}

impl fmt::Display for Utilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LUT {:.0}% FF {:.0}% BRAM {:.0}% DSP {:.0}%",
            self.lut_pct, self.ff_pct, self.bram_pct, self.dsp_pct
        )
    }
}

/// How the implement stage partitioned the netlist into islands, when
/// island partitioning ([`Flow::partitions`](crate::Flow::partitions))
/// was enabled *and* feasible. `None` on flat runs — including enabled
/// runs that deterministically fell back to flat placement (design too
/// small, or no feasible region reservation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSummary {
    /// Islands placed independently (>= 2).
    pub islands: u32,
    /// Nets that crossed an island boundary before stitching.
    pub cut_nets: u32,
    /// Registers inserted on inter-island crossings.
    pub crossing_registers: u32,
    /// Flip-flop bits those registers cost.
    pub crossing_register_bits: u64,
    /// Cells per island (crossing registers included).
    pub island_cells: Vec<u32>,
}

/// The outcome of running the flow on one design.
///
/// Equality ignores [`trace`](ImplementationResult::trace): two results
/// are equal when the *implementation* is identical, even if one came
/// from cached artifacts or a different thread count and therefore spent
/// its time differently. This is what the flow's determinism guarantees
/// (cached ≡ fresh, parallel ≡ sequential) quantify over.
#[derive(Debug, Clone)]
pub struct ImplementationResult {
    /// Achieved maximum frequency, MHz.
    pub fmax_mhz: f64,
    /// Achieved minimum clock period, ns.
    pub period_ns: f64,
    /// Resource utilization against the device.
    pub utilization: Utilization,
    /// Absolute resource counts.
    pub stats: Stats,
    /// Full timing report (critical path etc.).
    pub timing: TimingReport,
    /// Structural metadata from RTL generation.
    pub lower_info: LowerInfo,
    /// Pipeline depth of each lowered loop, in cycles.
    pub schedule_depths: Vec<u32>,
    /// Static latency estimate of the whole design, in cycles (see
    /// [`ScheduleArtifact::latency_cycles`](crate::ScheduleArtifact::latency_cycles)):
    /// the schedule's promised minimum for the full trip counts, with
    /// kernels overlapped under dataflow.
    pub latency_cycles: u64,
    /// Registers inserted by broadcast-aware scheduling.
    pub inserted_regs: usize,
    /// Registers duplicated by physical fanout optimization.
    pub duplicated_regs: usize,
    /// Backward retiming moves applied.
    pub retime_moves: usize,
    /// Names and kinds of the cells on the critical path (launch first).
    pub critical_cells: Vec<String>,
    /// Island-partitioning summary, when the implement stage ran
    /// partitioned (see [`PartitionSummary`]).
    pub partition: Option<PartitionSummary>,
    /// Static broadcast lint report, when [`Flow::lint`](crate::Flow::lint)
    /// was enabled.
    pub lint: Option<hlsb_lint::LintReport>,
    /// Static verify report (network + schedule contracts), when
    /// [`Flow::verify`](crate::Flow::verify) was enabled. Always free of
    /// `Error`-severity findings here — those abort the run with
    /// [`FlowError::VerifyRejected`](crate::FlowError::VerifyRejected)
    /// instead.
    pub verify: Option<hlsb_findings::Report>,
    /// Per-pass wall times and counters for this run. Excluded from
    /// equality.
    pub trace: PassTrace,
    /// Full hierarchical span trace with decision provenance, present
    /// when the flow ran with [`Flow::trace`](crate::Flow::trace)
    /// enabled. Excluded from equality (compare
    /// [`hlsb_trace::TraceTree::normalized`] views instead).
    pub span_tree: Option<hlsb_trace::TraceTree>,
}

impl PartialEq for ImplementationResult {
    fn eq(&self, other: &Self) -> bool {
        self.fmax_mhz == other.fmax_mhz
            && self.period_ns == other.period_ns
            && self.utilization == other.utilization
            && self.stats == other.stats
            && self.timing == other.timing
            && self.lower_info == other.lower_info
            && self.schedule_depths == other.schedule_depths
            && self.latency_cycles == other.latency_cycles
            && self.inserted_regs == other.inserted_regs
            && self.duplicated_regs == other.duplicated_regs
            && self.retime_moves == other.retime_moves
            && self.critical_cells == other.critical_cells
            && self.partition == other.partition
            && self.lint == other.lint
            && self.verify == other.verify
    }
}

impl ImplementationResult {
    /// Frequency gain of `self` over a baseline, as the paper reports it
    /// (percentage difference of Fmax).
    pub fn gain_over(&self, baseline: &ImplementationResult) -> f64 {
        100.0 * (self.fmax_mhz - baseline.fmax_mhz) / baseline.fmax_mhz
    }

    /// The hierarchical span trace, if the flow ran with tracing enabled.
    pub fn trace_tree(&self) -> Option<&hlsb_trace::TraceTree> {
        self.span_tree.as_ref()
    }
}

impl fmt::Display for ImplementationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Fmax {:.0} MHz (period {:.2} ns), {}",
            self.fmax_mhz, self.period_ns, self.utilization
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(fmax: f64) -> ImplementationResult {
        ImplementationResult {
            fmax_mhz: fmax,
            period_ns: 1000.0 / fmax,
            utilization: Utilization::default(),
            stats: Stats::default(),
            timing: TimingReport {
                period_ns: 1000.0 / fmax,
                fmax_mhz: fmax,
                critical_path: vec![],
                arrival_ns: vec![],
            },
            lower_info: LowerInfo::default(),
            schedule_depths: vec![],
            latency_cycles: 0,
            inserted_regs: 0,
            duplicated_regs: 0,
            retime_moves: 0,
            critical_cells: vec![],
            partition: None,
            lint: None,
            verify: None,
            trace: PassTrace::default(),
            span_tree: None,
        }
    }

    #[test]
    fn gain_matches_paper_convention() {
        // Genome sequencing: 264 -> 341 MHz is reported as 29%.
        let orig = dummy(264.0);
        let opt = dummy(341.0);
        let gain = opt.gain_over(&orig);
        assert!((gain - 29.2).abs() < 0.5, "{gain}");
    }

    #[test]
    fn display_formats() {
        let r = dummy(300.0);
        let s = r.to_string();
        assert!(s.contains("300 MHz"), "{s}");
    }
}
