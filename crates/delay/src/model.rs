//! The delay-model abstraction shared by schedulers.

use hlsb_ir::{DataType, OpKind};

/// A delay model as used by the HLS scheduler: per-operation combinational
/// delay (possibly broadcast-dependent) and pipeline latency.
///
/// `bf` is the *broadcast factor* relevant to the operation:
///
/// * for arithmetic/logic, the number of same-cycle readers of its most
///   widely read operand (how far the operand's net fans out);
/// * for memory operations, the number of physical BRAM banks the access
///   touches (a large buffer scatters over many units — paper §3.1 #2).
pub trait DelayModel {
    /// Combinational delay in nanoseconds of `op` on operands of type `ty`
    /// under broadcast factor `bf`.
    fn delay_ns(&self, op: OpKind, ty: DataType, bf: usize) -> f64;

    /// Pipeline latency in cycles. Zero-latency operations chain within a
    /// cycle; operations with latency ≥ 1 register their output.
    fn latency(&self, op: OpKind, ty: DataType) -> u32;

    /// The *wire-only* broadcast excess at factor `bf`, ns — the extra
    /// interconnect delay an operand net carries into this operator's
    /// inputs, independent of the operator's own logic. The default
    /// derives it from the delay curve; models whose curve saturates a
    /// conservative prediction (e.g. float multiply, Fig. 9c) should
    /// override it so the wire component is not masked by the `max`.
    fn wire_excess_ns(&self, op: OpKind, ty: DataType, bf: usize) -> f64 {
        (self.delay_ns(op, ty, bf) - self.delay_ns(op, ty, 1)).max(0.0)
    }

    /// Human-readable model name for reports.
    fn name(&self) -> &str;
}

impl<T: DelayModel + ?Sized> DelayModel for &T {
    fn delay_ns(&self, op: OpKind, ty: DataType, bf: usize) -> f64 {
        (**self).delay_ns(op, ty, bf)
    }

    fn latency(&self, op: OpKind, ty: DataType) -> u32 {
        (**self).latency(op, ty)
    }

    fn wire_excess_ns(&self, op: OpKind, ty: DataType, bf: usize) -> f64 {
        (**self).wire_excess_ns(op, ty, bf)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}
