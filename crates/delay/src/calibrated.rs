//! The calibrated delay model: `max(predicted, smoothed measurement)`.

use crate::characterize::{characterize, Characterization, CharacterizeConfig};
use crate::classes::{classify, OpClass};
use crate::model::DelayModel;
use crate::predicted::HlsPredictedModel;
use hlsb_fabric::Device;
use hlsb_ir::{DataType, OpKind};
use std::collections::HashMap;

/// The paper's calibrated delay model (§4.1).
///
/// For characterized classes the delay at broadcast factor `bf` is
/// `max(predicted, measured_base + wire_excess(bf))`, with `wire_excess`
/// log-interpolated between measured points. Classes that were not
/// explicitly characterized reuse the wire-excess curve of the integer-ALU
/// class (the broadcast excess is a property of the interconnect, not of
/// the operator), added on top of their predicted logic delay.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibratedModel {
    predicted: HlsPredictedModel,
    /// Per characterized class: (bf, wire excess over bf=1) points.
    excess: HashMap<OpClass, Vec<(usize, f64)>>,
    /// Fallback excess curve (from IntAlu, or empty).
    fallback: Vec<(usize, f64)>,
    label: String,
}

impl CalibratedModel {
    /// Builds the model from a characterization result.
    pub fn from_characterization(ch: &Characterization) -> Self {
        let mut excess = HashMap::new();
        for &class in ch.classes() {
            let Some(curve) = ch.curve(class) else {
                continue;
            };
            if curve.is_empty() {
                continue;
            }
            let base = curve[0].smoothed_ns;
            let pts: Vec<(usize, f64)> = curve
                .iter()
                .map(|p| (p.bf, (p.smoothed_ns - base).max(0.0)))
                .collect();
            excess.insert(class, pts);
        }
        let fallback = excess
            .get(&OpClass::IntAlu)
            .cloned()
            .unwrap_or_else(|| excess.values().next().cloned().unwrap_or_default());
        CalibratedModel {
            predicted: HlsPredictedModel::new(),
            excess,
            fallback,
            label: format!("calibrated({})", ch.device_name),
        }
    }

    /// Convenience: characterize with the fast analytic back-end and the
    /// default configuration (noise keyed on `seed`).
    pub fn characterize_analytic(device: &Device, seed: u64) -> Self {
        let config = CharacterizeConfig {
            seed,
            ..CharacterizeConfig::default()
        };
        Self::from_characterization(&characterize(device, &config))
    }

    /// The broadcast wire excess for an op class at factor `bf`, ns.
    pub fn wire_excess_ns(&self, class: OpClass, bf: usize) -> f64 {
        let curve = self.excess.get(&class).unwrap_or(&self.fallback);
        interpolate_log(curve, bf)
    }
}

/// Piecewise-linear interpolation in `ln(bf)`; extrapolates with the slope
/// of the outermost segment.
fn interpolate_log(curve: &[(usize, f64)], bf: usize) -> f64 {
    if curve.is_empty() {
        return 0.0;
    }
    let x = (bf.max(1) as f64).ln();
    if curve.len() == 1 {
        return curve[0].1;
    }
    let pts: Vec<(f64, f64)> = curve
        .iter()
        .map(|&(b, v)| ((b.max(1) as f64).ln(), v))
        .collect();
    let (lo, hi) = if x <= pts[0].0 {
        (pts[0], pts[1])
    } else if x >= pts[pts.len() - 1].0 {
        (pts[pts.len() - 2], pts[pts.len() - 1])
    } else {
        let i = pts.partition_point(|p| p.0 <= x).min(pts.len() - 1);
        (pts[i - 1], pts[i])
    };
    let span = hi.0 - lo.0;
    if span.abs() < 1e-12 {
        return lo.1;
    }
    let t = (x - lo.0) / span;
    (lo.1 + t * (hi.1 - lo.1)).max(0.0)
}

impl DelayModel for CalibratedModel {
    fn delay_ns(&self, op: OpKind, ty: DataType, bf: usize) -> f64 {
        let class = classify(op, ty);
        if class == OpClass::Free {
            return 0.0;
        }
        let predicted = HlsPredictedModel::class_delay_ns(class, ty);
        let measured =
            HlsPredictedModel::measured_base_ns(class, ty) + self.wire_excess_ns(class, bf);
        predicted.max(measured)
    }

    fn latency(&self, op: OpKind, ty: DataType) -> u32 {
        self.predicted.latency(op, ty)
    }

    fn wire_excess_ns(&self, op: OpKind, ty: DataType, bf: usize) -> f64 {
        // The raw wire component, not masked by the conservative-predicted
        // max of `delay_ns` (Fig. 9c: the fmul curve saturates the flat
        // prediction at small factors, but the operand net still carries
        // the full broadcast excess).
        self.wire_excess_ns(classify(op, ty), bf)
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CalibratedModel {
        CalibratedModel::characterize_analytic(&Device::ultrascale_plus_vu9p(), 1)
    }

    #[test]
    fn matches_predicted_at_small_bf() {
        let m = model();
        let p = HlsPredictedModel::new();
        let ty = DataType::Int(32);
        let d1 = m.delay_ns(OpKind::Add, ty, 1);
        let dp = p.delay_ns(OpKind::Add, ty, 1);
        // "the delay obtained from our experiment is consistent with the
        // predicted delay ... when the broadcast factor is small" (§4.1).
        assert!((d1 - dp).abs() < 0.35, "calibrated {d1} vs predicted {dp}");
    }

    #[test]
    fn grows_at_large_bf() {
        let m = model();
        let ty = DataType::Int(32);
        let d64 = m.delay_ns(OpKind::Sub, ty, 64);
        assert!(
            (1.6..=2.6).contains(&d64),
            "sub@64 = {d64}, paper anchor ≈ 2.08"
        );
        assert!(m.delay_ns(OpKind::Sub, ty, 1024) > d64);
    }

    #[test]
    fn fmul_calibration_takes_max_with_conservative_prediction() {
        let m = model();
        let ty = DataType::Float32;
        // At small bf the conservative prediction dominates.
        assert_eq!(m.delay_ns(OpKind::Mul, ty, 1), 4.0);
        // At very large bf the measured curve overtakes.
        assert!(m.delay_ns(OpKind::Mul, ty, 1024) > 4.0);
    }

    #[test]
    fn memory_delay_grows_with_bank_count() {
        let m = model();
        let ty = DataType::Int(32);
        let a = hlsb_ir::ArrayId(0);
        let small = m.delay_ns(OpKind::Store(a), ty, 1);
        let large = m.delay_ns(OpKind::Store(a), ty, 640);
        assert!(
            large > small + 1.5,
            "store 1 bank {small} vs 640 banks {large}"
        );
    }

    #[test]
    fn uncharacterized_class_uses_fallback_excess() {
        let m = model();
        let ty = DataType::Int(32);
        // Logic ops were not characterized but still see broadcast excess.
        let d1 = m.delay_ns(OpKind::Cmp(hlsb_ir::CmpPred::Lt), ty, 1);
        let d256 = m.delay_ns(OpKind::Cmp(hlsb_ir::CmpPred::Lt), ty, 256);
        assert!(d256 > d1 + 1.0);
    }

    #[test]
    fn interpolation_is_monotone_between_samples() {
        let m = model();
        let ty = DataType::Int(32);
        let mut last = 0.0;
        for bf in [1usize, 3, 5, 10, 48, 96, 200, 700, 1500] {
            let d = m.delay_ns(OpKind::Add, ty, bf);
            assert!(d >= last - 0.2, "non-monotone at bf={bf}: {d} < {last}");
            last = d;
        }
    }

    #[test]
    fn free_ops_stay_free() {
        let m = model();
        assert_eq!(m.delay_ns(OpKind::Reg, DataType::Int(32), 1024), 0.0);
    }

    #[test]
    fn latency_delegates_to_predicted() {
        let m = model();
        assert_eq!(m.latency(OpKind::Mul, DataType::Float32), 3);
    }
}
