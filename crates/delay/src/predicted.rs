//! The HLS-tool-predicted delay table (flat in broadcast factor).

use crate::classes::{classify, OpClass};
use crate::model::DelayModel;
use hlsb_ir::{DataType, OpKind};

/// Clock-to-out of a BRAM read port, ns (part of the Mem class delay).
pub const BRAM_CLK_TO_OUT_NS: f64 = 0.90;

/// A Vivado-HLS-style pre-characterized delay model.
///
/// Key properties reproduced from the paper:
///
/// * delays are **invariant to the broadcast factor** (§2: "The predicted
///   delay by HLS tools for a certain operator is fixed regardless of the
///   actual environment");
/// * the predicted delay of floating-point multiplication is **higher**
///   than its real logic delay ("possibly because the Vivado HLS tool is
///   being deliberately conservative about multiplication for floating
///   points", §4.1);
/// * memory access delay ignores the buffer size ("The predicted delay
///   remains the same regardless of the size of the buffer", §3.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HlsPredictedModel;

impl HlsPredictedModel {
    /// Creates the model.
    pub fn new() -> Self {
        HlsPredictedModel
    }

    /// Predicted delay of an op class on `ty`, independent of broadcast.
    pub fn class_delay_ns(class: OpClass, ty: DataType) -> f64 {
        let wide = ty.bits() > 32;
        match class {
            OpClass::IntAlu => {
                if wide {
                    1.10
                } else {
                    0.78
                }
            }
            OpClass::IntMul => 2.00,
            OpClass::FloatAddSub => 2.30,
            // Deliberately conservative, per the paper's Fig. 9 observation.
            OpClass::FloatMul => 4.00,
            OpClass::FloatDiv => 3.50,
            OpClass::Logic => {
                if wide {
                    0.55
                } else {
                    0.40
                }
            }
            OpClass::Mux => 0.35,
            OpClass::Mem => BRAM_CLK_TO_OUT_NS,
            OpClass::Fifo => 0.50,
            OpClass::Free => 0.0,
        }
    }

    /// The *actual* (measured) base logic delay of a class at broadcast
    /// factor 1, used by characterization. Identical to the predicted
    /// value except where the paper reports the prediction is conservative.
    pub fn measured_base_ns(class: OpClass, ty: DataType) -> f64 {
        match class {
            OpClass::FloatMul => 2.10, // real logic is much cheaper
            OpClass::FloatDiv => 3.00,
            other => Self::class_delay_ns(other, ty),
        }
    }
}

impl DelayModel for HlsPredictedModel {
    fn delay_ns(&self, op: OpKind, ty: DataType, _bf: usize) -> f64 {
        Self::class_delay_ns(classify(op, ty), ty)
    }

    fn latency(&self, op: OpKind, ty: DataType) -> u32 {
        match classify(op, ty) {
            OpClass::IntMul => 1,
            OpClass::FloatAddSub => 4,
            OpClass::FloatMul => 3,
            OpClass::FloatDiv => 12,
            OpClass::Mem => 1,
            OpClass::Fifo => 1,
            OpClass::Free => match op {
                OpKind::Reg => 1,
                _ => 0,
            },
            OpClass::IntAlu | OpClass::Logic | OpClass::Mux => 0,
        }
    }

    fn name(&self) -> &str {
        "hls-predicted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_in_broadcast_factor() {
        let m = HlsPredictedModel::new();
        let ty = DataType::Int(32);
        for bf in [1usize, 4, 64, 1024] {
            assert_eq!(m.delay_ns(OpKind::Add, ty, bf), 0.78);
            assert_eq!(m.delay_ns(OpKind::Sub, ty, bf), 0.78);
        }
    }

    #[test]
    fn fmul_prediction_is_conservative() {
        let ty = DataType::Float32;
        assert!(
            HlsPredictedModel::class_delay_ns(OpClass::FloatMul, ty)
                > HlsPredictedModel::measured_base_ns(OpClass::FloatMul, ty)
        );
    }

    #[test]
    fn latencies() {
        let m = HlsPredictedModel::new();
        assert_eq!(m.latency(OpKind::Add, DataType::Int(32)), 0);
        assert_eq!(m.latency(OpKind::Add, DataType::Float32), 4);
        assert_eq!(m.latency(OpKind::Mul, DataType::Float32), 3);
        assert_eq!(m.latency(OpKind::Reg, DataType::Int(32)), 1);
        assert_eq!(
            m.latency(OpKind::Load(hlsb_ir::ArrayId(0)), DataType::Int(32)),
            1
        );
    }

    #[test]
    fn wide_ops_are_slower() {
        assert!(
            HlsPredictedModel::class_delay_ns(OpClass::IntAlu, DataType::Int(64))
                > HlsPredictedModel::class_delay_ns(OpClass::IntAlu, DataType::Int(32))
        );
    }

    #[test]
    fn reg_is_free_but_latent() {
        let m = HlsPredictedModel::new();
        assert_eq!(m.delay_ns(OpKind::Reg, DataType::Int(32), 100), 0.0);
        assert_eq!(m.latency(OpKind::Reg, DataType::Int(32)), 1);
    }
}
