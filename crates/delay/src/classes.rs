//! Operator classes for delay characterization.

use hlsb_ir::{DataType, OpKind};
use std::fmt;

/// Delay class of an operation. Characterization measures one broadcast
/// curve per class (the paper's Fig. 9 shows int add, BRAM access and
/// float multiply).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer add/sub/min/max/abs — carry-chain logic.
    IntAlu,
    /// Integer multiply (DSP).
    IntMul,
    /// Floating-point add/sub.
    FloatAddSub,
    /// Floating-point multiply.
    FloatMul,
    /// Floating-point divide.
    FloatDiv,
    /// Cheap bitwise / compare / shift logic.
    Logic,
    /// Multiplexers (select).
    Mux,
    /// BRAM access (load/store).
    Mem,
    /// FIFO access.
    Fifo,
    /// Zero-cost structural ops (inputs, constants, repack, reg, call).
    Free,
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int-alu",
            OpClass::IntMul => "int-mul",
            OpClass::FloatAddSub => "fadd",
            OpClass::FloatMul => "fmul",
            OpClass::FloatDiv => "fdiv",
            OpClass::Logic => "logic",
            OpClass::Mux => "mux",
            OpClass::Mem => "mem",
            OpClass::Fifo => "fifo",
            OpClass::Free => "free",
        };
        f.write_str(s)
    }
}

/// Classifies an operation on a given data type.
pub fn classify(op: OpKind, ty: DataType) -> OpClass {
    let float = ty.is_float();
    match op {
        OpKind::Add | OpKind::Sub if float => OpClass::FloatAddSub,
        OpKind::Mul if float => OpClass::FloatMul,
        OpKind::Div if float => OpClass::FloatDiv,
        OpKind::Add | OpKind::Sub | OpKind::Min | OpKind::Max | OpKind::Abs => OpClass::IntAlu,
        OpKind::Mul | OpKind::Div => OpClass::IntMul,
        OpKind::And
        | OpKind::Or
        | OpKind::Xor
        | OpKind::Not
        | OpKind::Shl
        | OpKind::Shr
        | OpKind::Cmp(_)
        | OpKind::Log2 => OpClass::Logic,
        OpKind::Select => OpClass::Mux,
        OpKind::Load(_) | OpKind::Store(_) => OpClass::Mem,
        OpKind::FifoRead(_) | OpKind::FifoWrite(_) => OpClass::Fifo,
        OpKind::Const
        | OpKind::Input { .. }
        | OpKind::IndVar
        | OpKind::Output
        | OpKind::Reg
        | OpKind::Call(_)
        | OpKind::Repack => OpClass::Free,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_ops_classify_by_type() {
        assert_eq!(
            classify(OpKind::Add, DataType::Float32),
            OpClass::FloatAddSub
        );
        assert_eq!(classify(OpKind::Add, DataType::Int(32)), OpClass::IntAlu);
        assert_eq!(classify(OpKind::Mul, DataType::Float32), OpClass::FloatMul);
        assert_eq!(classify(OpKind::Mul, DataType::Int(16)), OpClass::IntMul);
        assert_eq!(classify(OpKind::Div, DataType::Float64), OpClass::FloatDiv);
    }

    #[test]
    fn structural_ops_are_free() {
        assert_eq!(
            classify(OpKind::Input { invariant: true }, DataType::Int(8)),
            OpClass::Free
        );
        assert_eq!(classify(OpKind::Reg, DataType::Float32), OpClass::Free);
        assert_eq!(classify(OpKind::Repack, DataType::Bits(512)), OpClass::Free);
    }

    #[test]
    fn memory_and_fifo() {
        assert_eq!(
            classify(OpKind::Load(hlsb_ir::ArrayId(0)), DataType::Int(32)),
            OpClass::Mem
        );
        assert_eq!(
            classify(OpKind::FifoWrite(hlsb_ir::FifoId(0)), DataType::Bits(64)),
            OpClass::Fifo
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(OpClass::FloatMul.to_string(), "fmul");
        assert_eq!(OpClass::Mem.to_string(), "mem");
    }
}
