//! Skeleton-design delay characterization (the paper's §4.1 methodology).
//!
//! For each operator class and broadcast factor `k`, we "implement a
//! skeleton broadcast structure on an empty FPGA": one source register
//! fanning out to `k` operator instances. Two measurement back-ends exist:
//!
//! * **analytic** (default, fast): the closed-form fabric wire model with
//!   the `sqrt(k)` sink spread, perturbed by deterministic pseudo-noise;
//! * **placed** (slow, used by the Fig. 9 regenerator and slow tests):
//!   actually builds the skeleton netlist, places it with the annealer on
//!   an empty device, and measures the STA period.
//!
//! Every data point is then averaged with its neighbours to suppress the
//! noise, exactly as the paper describes.

use crate::classes::OpClass;
use crate::predicted::{HlsPredictedModel, BRAM_CLK_TO_OUT_NS};
use hlsb_fabric::noise::NoiseModel;
use hlsb_fabric::{Device, WireModel};
use hlsb_ir::DataType;
use hlsb_netlist::{Cell, Netlist};
use hlsb_place::{place_with, AnnealConfig};
use hlsb_timing::{sta, SETUP_NS};
use std::collections::BTreeMap;

/// One measured point of a broadcast-delay curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Broadcast factor.
    pub bf: usize,
    /// Raw measured operator delay (logic + broadcast wire), ns.
    pub raw_ns: f64,
    /// Neighbour-averaged delay, ns.
    pub smoothed_ns: f64,
}

/// Configuration of a characterization run.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizeConfig {
    /// Broadcast factors to sample (ascending).
    pub bfs: Vec<usize>,
    /// Classes to characterize.
    pub classes: Vec<OpClass>,
    /// Noise amplitude (relative, e.g. 0.04 = ±4%).
    pub noise: f64,
    /// RNG seed for noise and (if placed) placement.
    pub seed: u64,
    /// Use the placed back-end instead of the analytic one.
    pub placed: bool,
}

impl Default for CharacterizeConfig {
    fn default() -> Self {
        CharacterizeConfig {
            bfs: vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024],
            classes: vec![OpClass::IntAlu, OpClass::Mem, OpClass::FloatMul],
            noise: 0.04,
            seed: 0xB0AD_CA57,
            placed: false,
        }
    }
}

/// The result: one smoothed curve per operator class.
#[derive(Debug, Clone, PartialEq)]
pub struct Characterization {
    /// Device the curves were measured on.
    pub device_name: String,
    /// Curves per class, points sorted by broadcast factor.
    pub curves: BTreeMap<&'static str, Vec<CurvePoint>>,
    classes: Vec<OpClass>,
}

impl Characterization {
    /// The curve for a class, if characterized.
    pub fn curve(&self, class: OpClass) -> Option<&[CurvePoint]> {
        self.curves.get(class_key(class)).map(Vec::as_slice)
    }

    /// Classes characterized.
    pub fn classes(&self) -> &[OpClass] {
        &self.classes
    }
}

fn class_key(class: OpClass) -> &'static str {
    match class {
        OpClass::IntAlu => "int-alu",
        OpClass::IntMul => "int-mul",
        OpClass::FloatAddSub => "fadd",
        OpClass::FloatMul => "fmul",
        OpClass::FloatDiv => "fdiv",
        OpClass::Logic => "logic",
        OpClass::Mux => "mux",
        OpClass::Mem => "mem",
        OpClass::Fifo => "fifo",
        OpClass::Free => "free",
    }
}

/// The reference data type each class is characterized at.
fn class_ty(class: OpClass) -> DataType {
    match class {
        OpClass::FloatAddSub | OpClass::FloatMul | OpClass::FloatDiv => DataType::Float32,
        _ => DataType::Int(32),
    }
}

/// Runs a characterization.
pub fn characterize(device: &Device, config: &CharacterizeConfig) -> Characterization {
    let wire = WireModel::for_device(device);
    let noise = NoiseModel::new(config.noise, config.seed);
    let mut curves = BTreeMap::new();

    for (ci, &class) in config.classes.iter().enumerate() {
        let ty = class_ty(class);
        let raw: Vec<f64> = config
            .bfs
            .iter()
            .map(|&bf| {
                let measured = if config.placed {
                    measure_placed(
                        device,
                        &wire,
                        class,
                        ty,
                        bf,
                        config.seed ^ (ci as u64) << 32,
                    )
                } else {
                    measure_analytic(&wire, class, ty, bf)
                };
                noise.perturb(measured, ci as u64, bf as u64)
            })
            .collect();
        let smoothed = smooth(&raw);
        let points: Vec<CurvePoint> = config
            .bfs
            .iter()
            .zip(raw.iter().zip(smoothed.iter()))
            .map(|(&bf, (&raw_ns, &smoothed_ns))| CurvePoint {
                bf,
                raw_ns,
                smoothed_ns,
            })
            .collect();
        curves.insert(class_key(class), points);
    }

    Characterization {
        device_name: device.name.clone(),
        curves,
        classes: config.classes.clone(),
    }
}

/// Analytic back-end: base logic delay + closed-form broadcast wire excess.
fn measure_analytic(wire: &WireModel, class: OpClass, ty: DataType, bf: usize) -> f64 {
    let base = HlsPredictedModel::measured_base_ns(class, ty);
    let local = wire.net_delay_ns(1.0, 1);
    base + (wire.skeleton_net_delay_ns(bf) - local)
}

/// Placed back-end: build the skeleton, place, run STA.
fn measure_placed(
    device: &Device,
    wire: &WireModel,
    class: OpClass,
    ty: DataType,
    bf: usize,
    seed: u64,
) -> f64 {
    let clk_to_q = 0.10;
    let local = wire.net_delay_ns(1.0, 1);
    let mut nl = Netlist::new(format!("skeleton_{}_{bf}", class_key(class)));
    let src = nl.add_cell(Cell::ff("src", ty.bits()));
    let base = HlsPredictedModel::measured_base_ns(class, ty);

    if class == OpClass::Mem {
        // Source register fanning out to `bf` BRAM banks (stores capture
        // at the BRAM, a sequential endpoint).
        let banks: Vec<_> = (0..bf)
            .map(|i| nl.add_cell(Cell::bram(format!("bank{i}"), ty.bits(), 1)))
            .collect();
        nl.connect(src, &banks);
        let placement = place_with(&nl, device, seed, light_anneal());
        let report = sta(&nl, &placement, wire);
        // Broadcast wire excess + the BRAM's own access time.
        return BRAM_CLK_TO_OUT_NS + (report.period_ns - clk_to_q - SETUP_NS) - local;
    }

    // Source register fanning out to `bf` operator instances, each feeding
    // a private sink register.
    let mut sinks = Vec::with_capacity(bf);
    for i in 0..bf {
        let op = nl.add_cell(Cell::comb(format!("op{i}"), ty.bits(), base, ty.bits()));
        let ff = nl.add_cell(Cell::ff(format!("q{i}"), ty.bits()));
        nl.connect(op, &[ff]);
        sinks.push(op);
    }
    nl.connect(src, &sinks);
    let placement = place_with(&nl, device, seed, light_anneal());
    // STA sanity (also exercises the timing path end to end).
    let report = sta(&nl, &placement, wire);
    debug_assert!(report.period_ns > clk_to_q + base);
    // The operator delay under broadcast is the worst broadcast-net arc
    // plus the operator's own logic; the private op->FF hop is excluded
    // (on silicon the capture register sits in the same slice).
    let worst_arc = sinks
        .iter()
        .map(|&op| wire.net_delay_ns(placement.dist(src, op), bf))
        .fold(0.0f64, f64::max);
    base + worst_arc - local
}

fn light_anneal() -> AnnealConfig {
    AnnealConfig {
        moves_per_cell: 80,
        min_moves: 20_000,
        max_moves: 120_000,
        cooling: 0.82,
        batches: 30,
    }
}

/// Neighbour averaging: each point becomes the mean of itself and its
/// immediate neighbours (the paper's noise-suppression step).
pub fn smooth(raw: &[f64]) -> Vec<f64> {
    let n = raw.len();
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(1);
            let hi = (i + 1).min(n - 1);
            raw[lo..=hi].iter().sum::<f64>() / (hi - lo + 1) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoothing_averages_neighbours() {
        let s = smooth(&[1.0, 2.0, 9.0, 2.0, 1.0]);
        assert_eq!(s[0], 1.5);
        assert_eq!(s[2], (2.0 + 9.0 + 2.0) / 3.0);
        assert_eq!(s[4], 1.5);
    }

    #[test]
    fn smoothing_single_point_is_identity() {
        assert_eq!(smooth(&[3.0]), vec![3.0]);
    }

    #[test]
    fn analytic_curves_grow_with_bf() {
        let dev = Device::ultrascale_plus_vu9p();
        let ch = characterize(&dev, &CharacterizeConfig::default());
        for class in [OpClass::IntAlu, OpClass::Mem, OpClass::FloatMul] {
            let curve = ch.curve(class).expect("characterized");
            assert_eq!(curve.len(), 11);
            assert!(
                curve.last().unwrap().smoothed_ns > curve[0].smoothed_ns + 1.0,
                "{class}: {:?}",
                curve
            );
            // bf ascending.
            for w in curve.windows(2) {
                assert!(w[0].bf < w[1].bf);
            }
        }
    }

    #[test]
    fn characterization_is_deterministic() {
        let dev = Device::ultrascale_plus_vu9p();
        let a = characterize(&dev, &CharacterizeConfig::default());
        let b = characterize(&dev, &CharacterizeConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn paper_anchor_int_alu_at_64() {
        // §5.2: 0.78 ns sub measured at ≈ 2.08 ns under 64-way broadcast.
        let dev = Device::ultrascale_plus_vu9p();
        let cfg = CharacterizeConfig {
            noise: 0.0,
            ..CharacterizeConfig::default()
        };
        let ch = characterize(&dev, &cfg);
        let curve = ch.curve(OpClass::IntAlu).unwrap();
        let p64 = curve.iter().find(|p| p.bf == 64).unwrap();
        assert!(
            (1.7..=2.5).contains(&p64.smoothed_ns),
            "int-alu@64 = {} ns, expected ≈ 2.08",
            p64.smoothed_ns
        );
    }

    #[test]
    fn placed_backend_matches_analytic_roughly() {
        // The placed measurement should land in the same ballpark as the
        // analytic model for a mid-size broadcast.
        let dev = Device::ultrascale_plus_vu9p();
        let cfg = CharacterizeConfig {
            bfs: vec![16, 32, 64],
            classes: vec![OpClass::IntAlu],
            noise: 0.0,
            seed: 7,
            placed: true,
        };
        let placed = characterize(&dev, &cfg);
        let analytic = characterize(
            &dev,
            &CharacterizeConfig {
                placed: false,
                ..cfg
            },
        );
        let p = placed.curve(OpClass::IntAlu).unwrap();
        let a = analytic.curve(OpClass::IntAlu).unwrap();
        for (pp, aa) in p.iter().zip(a) {
            let ratio = pp.smoothed_ns / aa.smoothed_ns;
            assert!(
                (0.3..=3.5).contains(&ratio),
                "bf={}: placed {} vs analytic {}",
                pp.bf,
                pp.smoothed_ns,
                aa.smoothed_ns
            );
        }
    }
}
