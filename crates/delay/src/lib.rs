//! # hlsb-delay — operator delay models and broadcast calibration
//!
//! HLS schedulers rely on *pre-characterized* operator delays. The paper's
//! §4.1 observation is that those tables are flat in the broadcast factor,
//! while the real post-route delay of an operator grows with the fanout of
//! its operands. This crate provides:
//!
//! * [`HlsPredictedModel`] — a Vivado-HLS-like table: fixed delay per
//!   (operation, type), *invariant to broadcast factor*, deliberately
//!   conservative for floating-point multiplication (as the paper
//!   observes in Fig. 9);
//! * [`characterize()`] — the skeleton-design measurement methodology:
//!   instantiate one source register fanning out to `k` operators on an
//!   otherwise empty device, place it, run STA, perturb with deterministic
//!   noise, and smooth by neighbour averaging;
//! * [`CalibratedModel`] — `max(predicted, smoothed measurement)`, the
//!   paper's calibrated delay used by broadcast-aware scheduling.
//!
//! # Example
//!
//! ```
//! use hlsb_delay::{CalibratedModel, DelayModel, HlsPredictedModel};
//! use hlsb_fabric::Device;
//! use hlsb_ir::{DataType, OpKind};
//!
//! let predicted = HlsPredictedModel::new();
//! let calibrated = CalibratedModel::characterize_analytic(
//!     &Device::ultrascale_plus_vu9p(), 42);
//!
//! let ty = DataType::Int(32);
//! // Flat vs growing in broadcast factor:
//! assert_eq!(predicted.delay_ns(OpKind::Add, ty, 1),
//!            predicted.delay_ns(OpKind::Add, ty, 64));
//! assert!(calibrated.delay_ns(OpKind::Add, ty, 64) >
//!         calibrated.delay_ns(OpKind::Add, ty, 1) + 0.5);
//! ```

pub mod calibrated;
pub mod characterize;
pub mod classes;
pub mod model;
pub mod predicted;

pub use calibrated::CalibratedModel;
pub use characterize::{characterize, Characterization, CharacterizeConfig, CurvePoint};
pub use classes::{classify, OpClass};
pub use model::DelayModel;
pub use predicted::HlsPredictedModel;
