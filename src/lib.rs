//! Reproduction harness root crate: re-exports for examples and integration tests.
pub use hlsb;
