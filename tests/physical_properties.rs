//! Physical-flow properties spanning netlist, placement and timing.

use hlsb_fabric::{Device, WireModel};
use hlsb_netlist::{to_verilog, Cell, Netlist};
use hlsb_place::{place, Placement};
use hlsb_rng::Rng;
use hlsb_timing::sta;

/// A random feed-forward netlist: FF sources, comb middle layers, FF sinks.
fn random_netlist(shape: &[u8]) -> Netlist {
    let mut nl = Netlist::new("rand");
    let mut prev: Vec<_> = (0..3)
        .map(|i| nl.add_cell(Cell::ff(format!("src{i}"), 8)))
        .collect();
    for (li, &n) in shape.iter().enumerate() {
        let layer: Vec<_> = (0..(n % 5) + 1)
            .map(|i| {
                nl.add_cell(Cell::comb(
                    format!("l{li}_{i}"),
                    8,
                    0.3 + f64::from(n % 3) * 0.2,
                    8,
                ))
            })
            .collect();
        for (i, &c) in layer.iter().enumerate() {
            let d = prev[i % prev.len()];
            nl.connect(d, &[c]);
        }
        prev = layer;
    }
    let sink = nl.add_cell(Cell::ff("sink", 8));
    let last = prev[0];
    nl.connect(last, &[sink]);
    nl
}

fn random_shape(rng: &mut Rng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_index(max_len) + 1;
    (0..len).map(|_| rng.gen_u64(0, 249) as u8).collect()
}

#[test]
fn placement_is_legal_and_sta_is_finite() {
    let mut rng = Rng::seed_from_u64(0x9413_0001);
    for _ in 0..16 {
        let shape = random_shape(&mut rng, 7);
        let seed = rng.gen_u64(0, 999);
        let nl = random_netlist(&shape);
        let dev = Device::ultrascale_plus_vu9p();
        let p = place(&nl, &dev, seed);
        assert!(p.in_bounds());
        // Site exclusivity holds.
        let mut seen = std::collections::HashSet::new();
        for (id, _) in nl.cells() {
            assert!(seen.insert(p.loc(id)), "collision at {:?}", p.loc(id));
        }
        let r = sta(&nl, &p, &WireModel::for_device(&dev));
        assert!(r.period_ns.is_finite() && r.period_ns > 0.0);
        assert!(!r.critical_path.is_empty());
    }
}

#[test]
fn sta_is_monotone_in_distance() {
    // Uniformly stretching the placement scales every manhattan distance
    // up, and the wire model is increasing in distance, so the period can
    // never decrease. (Moving a *single* cell is not monotone — it may
    // land closer to some of its neighbors — so the property is stated
    // over a whole-placement stretch.)
    let mut rng = Rng::seed_from_u64(0x9413_0002);
    for _ in 0..16 {
        let shape = random_shape(&mut rng, 5);
        let nl = random_netlist(&shape);
        let dev = Device::ultrascale_plus_vu9p();
        let mut p = place(&nl, &dev, 1);
        let w = WireModel::for_device(&dev);
        let before = sta(&nl, &p, &w);
        for (id, _) in nl.cells() {
            let (x, y) = p.loc(id);
            p.set_loc(id, (x * 2, y * 2));
        }
        let after = sta(&nl, &p, &w);
        assert!(
            after.period_ns + 1e-9 >= before.period_ns,
            "shape {shape:?}"
        );
    }
}

#[test]
fn verilog_export_is_structurally_consistent() {
    let mut rng = Rng::seed_from_u64(0x9413_0003);
    for _ in 0..32 {
        let shape = random_shape(&mut rng, 5);
        let nl = random_netlist(&shape);
        let v = to_verilog(&nl);
        // Balanced modules, one wire per net, one instance line per
        // non-port cell.
        assert_eq!(v.matches("module ").count(), v.matches("endmodule").count());
        // One wire declaration per net in the top module (the primitive
        // library after the first `endmodule` has its own wires).
        let top = v.split("endmodule").next().expect("top module");
        assert_eq!(top.matches("    wire ").count(), nl.net_count());
        let instances = v.matches("hlsb_ff").count()
            + v.matches("hlsb_comb").count()
            + v.matches("hlsb_bram").count()
            + v.matches("hlsb_const").count();
        // Primitive names appear once in the library and once per instance.
        assert!(instances >= nl.cell_count());
    }
}

#[test]
fn verilog_export_of_an_implemented_benchmark() {
    use hlsb::{Flow, OptimizationOptions, PlaceEffort};
    let bench = hlsb_benchmarks::genome::design(8);
    let (result, netlist, placement) = Flow::new(bench)
        .options(OptimizationOptions::all())
        .place_effort(PlaceEffort::Fast)
        .place_seeds(1)
        .run_detailed()
        .expect("flow");
    let v = to_verilog(&netlist);
    assert!(v.contains("module genome_chaining"));
    assert!(v.matches("hlsb_ff").count() > 10);
    // The timing path report renders against the same artifacts.
    let wire = WireModel::for_device(&hlsb_fabric::Device::ultrascale_plus_vu9p());
    let text = result.timing.path_text(&netlist, &placement, &wire);
    assert!(text.contains("critical path"), "{text}");
}

#[test]
fn injected_fmax_is_non_increasing_as_boundaries_are_removed() {
    // Forced pipeline registers pay for their extra latency with cut
    // combinational chains: peeling injection boundaries off one at a
    // time can only lose cuts, so the achieved Fmax must not increase
    // (and the static latency must not grow). Three placement seeds
    // keep placement noise out of the comparison; the whole chain is
    // deterministic for a fixed flow seed.
    use hlsb::{Flow, FlowSession, OptimizationOptions, PlaceEffort, RegisterInjection};
    let design = hlsb_benchmarks::vector_arith::design(128, 4);
    let device = Device::ultrascale_plus_vu9p();
    let session = FlowSession::new();
    let chain = [vec![1u32, 2, 3], vec![1, 2], vec![1], vec![]];
    let mut prev: Option<(Vec<u32>, f64, u64)> = None;
    for bounds in chain {
        let flow = Flow::new(design.clone())
            .device(device.clone())
            .clock_mhz(250.0)
            .options(OptimizationOptions::all())
            .inject(RegisterInjection::at(bounds.clone()))
            .seed(0xDAC2_2020)
            .place_effort(PlaceEffort::Fast)
            .place_seeds(3);
        let r = session.run(&flow).expect("flow");
        if let Some((pb, pf, pl)) = prev {
            assert!(
                r.fmax_mhz <= pf + 1e-9,
                "removing a boundary raised Fmax: {pb:?} -> {bounds:?} \
                 went {pf:.2} -> {:.2} MHz",
                r.fmax_mhz
            );
            assert!(
                r.latency_cycles <= pl,
                "removing a boundary grew latency: {pb:?} -> {bounds:?} \
                 went {pl} -> {} cycles",
                r.latency_cycles
            );
        }
        prev = Some((bounds, r.fmax_mhz, r.latency_cycles));
    }
    // The widest injection set genuinely pays latency for its frequency.
    let (_, _, lat_off) = prev.expect("chain is non-empty");
    let full = Flow::new(design.clone())
        .device(device.clone())
        .clock_mhz(250.0)
        .options(OptimizationOptions::all())
        .inject(RegisterInjection::at(vec![1, 2, 3]))
        .seed(0xDAC2_2020)
        .place_effort(PlaceEffort::Fast)
        .place_seeds(3);
    let r = session.run(&full).expect("flow");
    assert!(r.latency_cycles > lat_off, "injection must add latency");
}

#[test]
fn placement_type_is_reusable_for_manual_analyses() {
    // The Placement API supports hand-built analyses (docs example check).
    let mut nl = Netlist::new("m");
    let a = nl.add_cell(Cell::ff("a", 4));
    let b = nl.add_cell(Cell::ff("b", 4));
    nl.connect(a, &[b]);
    let p = Placement::from_locs(vec![(0, 0), (3, 4)], 10, 10);
    assert_eq!(p.dist(a, b), 7.0);
    assert_eq!(p.total_hpwl(&nl), 7.0);
}
