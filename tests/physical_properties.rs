//! Physical-flow properties spanning netlist, placement and timing.

use hlsb_fabric::{Device, WireModel};
use hlsb_netlist::{Cell, Netlist, to_verilog};
use hlsb_place::{place, Placement};
use hlsb_timing::sta;
use proptest::prelude::*;

/// A random feed-forward netlist: FF sources, comb middle layers, FF sinks.
fn random_netlist(shape: &[u8]) -> Netlist {
    let mut nl = Netlist::new("rand");
    let mut prev: Vec<_> = (0..3)
        .map(|i| nl.add_cell(Cell::ff(format!("src{i}"), 8)))
        .collect();
    for (li, &n) in shape.iter().enumerate() {
        let layer: Vec<_> = (0..(n % 5) + 1)
            .map(|i| nl.add_cell(Cell::comb(format!("l{li}_{i}"), 8, 0.3 + f64::from(n % 3) * 0.2, 8)))
            .collect();
        for (i, &c) in layer.iter().enumerate() {
            let d = prev[i % prev.len()];
            nl.connect(d, &[c]);
        }
        prev = layer;
    }
    let sink = nl.add_cell(Cell::ff("sink", 8));
    let last = prev[0];
    nl.connect(last, &[sink]);
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn placement_is_legal_and_sta_is_finite(
        shape in proptest::collection::vec(0u8..250, 1..8),
        seed in 0u64..1000,
    ) {
        let nl = random_netlist(&shape);
        let dev = Device::ultrascale_plus_vu9p();
        let p = place(&nl, &dev, seed);
        prop_assert!(p.in_bounds());
        // Site exclusivity holds.
        let mut seen = std::collections::HashSet::new();
        for (id, _) in nl.cells() {
            prop_assert!(seen.insert(p.loc(id)), "collision at {:?}", p.loc(id));
        }
        let r = sta(&nl, &p, &WireModel::for_device(&dev));
        prop_assert!(r.period_ns.is_finite() && r.period_ns > 0.0);
        prop_assert!(!r.critical_path.is_empty());
    }

    #[test]
    fn sta_is_monotone_in_distance(
        shape in proptest::collection::vec(0u8..250, 1..6),
        dx in 1u16..40,
    ) {
        // Stretching the placement (moving one critical cell away) never
        // decreases the period.
        let nl = random_netlist(&shape);
        let dev = Device::ultrascale_plus_vu9p();
        let mut p = place(&nl, &dev, 1);
        let w = WireModel::for_device(&dev);
        let before = sta(&nl, &p, &w);
        let victim = *before.critical_path.last().unwrap();
        let (x, y) = p.loc(victim);
        p.set_loc(victim, ((x + dx).min(dev.grid_w as u16 - 1), y));
        let after = sta(&nl, &p, &w);
        prop_assert!(after.period_ns + 1e-9 >= before.period_ns);
    }

    #[test]
    fn verilog_export_is_structurally_consistent(
        shape in proptest::collection::vec(0u8..250, 1..6),
    ) {
        let nl = random_netlist(&shape);
        let v = to_verilog(&nl);
        // Balanced modules, one wire per net, one instance line per
        // non-port cell.
        prop_assert_eq!(v.matches("module ").count(), v.matches("endmodule").count());
        // One wire declaration per net in the top module (the primitive
        // library after the first `endmodule` has its own wires).
        let top = v.split("endmodule").next().expect("top module");
        prop_assert_eq!(top.matches("    wire ").count(), nl.net_count());
        let instances = v.matches("hlsb_ff").count() + v.matches("hlsb_comb").count()
            + v.matches("hlsb_bram").count() + v.matches("hlsb_const").count();
        // Primitive names appear once in the library and once per instance.
        prop_assert!(instances >= nl.cell_count());
    }
}

#[test]
fn verilog_export_of_an_implemented_benchmark() {
    use hlsb::{Flow, OptimizationOptions, PlaceEffort};
    let bench = hlsb_benchmarks::genome::design(8);
    let (result, netlist, placement) = Flow::new(bench)
        .options(OptimizationOptions::all())
        .place_effort(PlaceEffort::Fast)
        .place_seeds(1)
        .run_detailed()
        .expect("flow");
    let v = to_verilog(&netlist);
    assert!(v.contains("module genome_chaining"));
    assert!(v.matches("hlsb_ff").count() > 10);
    // The timing path report renders against the same artifacts.
    let wire = WireModel::for_device(&hlsb_fabric::Device::ultrascale_plus_vu9p());
    let text = result.timing.path_text(&netlist, &placement, &wire);
    assert!(text.contains("critical path"), "{text}");
}

#[test]
fn placement_type_is_reusable_for_manual_analyses() {
    // The Placement API supports hand-built analyses (docs example check).
    let mut nl = Netlist::new("m");
    let a = nl.add_cell(Cell::ff("a", 4));
    let b = nl.add_cell(Cell::ff("b", 4));
    nl.connect(a, &[b]);
    let p = Placement::from_locs(vec![(0, 0), (3, 4)], 10, 10);
    assert_eq!(p.dist(a, b), 7.0);
    assert_eq!(p.total_hpwl(&nl), 7.0);
}
