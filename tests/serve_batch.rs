//! End-to-end batch serving: the compile-farm contract that a warm store
//! answers a repeated job stream with zero place-and-route work and a
//! byte-identical outcome stream — plus in-run dedup, rejection handling
//! and worker-count invariance.

use std::path::PathBuf;
use std::sync::Arc;

use hlsb_serve::{JobOutcome, JobServer, JobStatus, ServeConfig};
use hlsb_store::ArtifactStore;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("hlsb_serve_batch_test")
        .join(format!("{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn serve(server: &mut JobServer, lines: &[String]) -> (Vec<JobOutcome>, hlsb_serve::ServeSummary) {
    let mut out = Vec::new();
    let summary = server.process(lines.to_vec(), |o| out.push(o.clone()));
    (out, summary)
}

fn outcome_stream(out: &[JobOutcome]) -> Vec<String> {
    out.iter().map(JobOutcome::to_json).collect()
}

#[test]
fn warm_store_serves_all_nine_benchmarks_with_zero_evaluations() {
    // The headline acceptance criterion: enqueue the nine paper
    // benchmarks against a store twice. Pass one evaluates everything;
    // pass two (a fresh server process over the same directory) answers
    // every job from disk — zero full place-and-route runs — and its
    // outcome stream is byte-identical.
    let dir = scratch("nine_benchmarks");
    let lines: Vec<String> = hlsb_benchmarks::all_benchmarks()
        .iter()
        .map(|b| format!("{{\"design\":\"{}\",\"options\":\"all\"}}", b.design.name))
        .collect();
    assert_eq!(lines.len(), 9, "the paper's benchmark suite");
    let cfg = ServeConfig::default();

    let store = Arc::new(ArtifactStore::open(&dir).unwrap());
    let mut cold = JobServer::with_store(cfg.clone(), store.clone());
    let (cold_out, cold_summary) = serve(&mut cold, &lines);
    assert_eq!(cold_summary.evaluated, 9, "cold store evaluates everything");
    assert_eq!(cold_summary.store_hits, 0);
    assert_eq!(cold_summary.failed, 0);
    assert_eq!(store.result_count(), 9);
    for o in &cold_out {
        assert_eq!(o.status, JobStatus::Done, "{:?}", o);
        assert!(o.record.as_ref().unwrap().fmax_mhz > 0.0);
    }

    // A freshly opened handle stands in for a second process.
    let rewarmed = Arc::new(ArtifactStore::open(&dir).unwrap());
    let mut warm = JobServer::with_store(cfg, rewarmed);
    let (warm_out, warm_summary) = serve(&mut warm, &lines);
    assert_eq!(warm_summary.evaluated, 0, "warm store: zero P&R work");
    assert_eq!(warm_summary.store_hits, 9);
    assert_eq!(outcome_stream(&warm_out), outcome_stream(&cold_out));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn duplicate_jobs_in_one_stream_dedup_to_one_evaluation() {
    // The same configuration queued five times (with distinct client
    // ids, straddling wave boundaries) costs one evaluation; every copy
    // answers with the same record, and ids pass through untouched.
    let mut server = JobServer::new(ServeConfig {
        wave: 2,
        ..ServeConfig::default()
    });
    let lines: Vec<String> = (0..5)
        .map(|i| format!("{{\"id\":\"client-{i}\",\"design\":\"fuzz:7\"}}"))
        .collect();
    let (out, summary) = serve(&mut server, &lines);
    assert_eq!(summary.jobs, 5);
    assert_eq!(summary.evaluated, 1);
    assert_eq!(summary.dedup_hits, 4);
    let first = out[0].record.clone().expect("evaluated");
    for (i, o) in out.iter().enumerate() {
        assert_eq!(o.id, format!("client-{i}"));
        assert_eq!(o.status, JobStatus::Done);
        assert_eq!(o.record.as_ref(), Some(&first), "copy {i} diverged");
    }
}

#[test]
fn rejected_jobs_are_never_stored_and_reject_identically_warm() {
    // Dirty designs trip the verify pre-gate. Rejections are not
    // persisted — a warm pass re-verifies and re-rejects with the same
    // findings — while the clean job in the same stream is stored and
    // answered from disk the second time.
    let dir = scratch("rejections");
    let lines = vec![
        "{\"design\":\"dirty:0\"}".to_string(), // seed 0 plants VN01
        "{\"design\":\"fuzz:3\"}".to_string(),
    ];
    let store = Arc::new(ArtifactStore::open(&dir).unwrap());
    let mut cold = JobServer::with_store(ServeConfig::default(), store.clone());
    let (cold_out, cold_summary) = serve(&mut cold, &lines);
    assert_eq!(cold_summary.rejected, 1);
    assert_eq!(cold_summary.evaluated, 1);
    assert_eq!(cold_out[0].status, JobStatus::Rejected);
    assert_eq!(cold_out[0].findings, vec!["VN01".to_string()]);
    assert_eq!(store.result_count(), 1, "only the clean job is persisted");

    let rewarmed = Arc::new(ArtifactStore::open(&dir).unwrap());
    let mut warm = JobServer::with_store(ServeConfig::default(), rewarmed);
    let (warm_out, warm_summary) = serve(&mut warm, &lines);
    assert_eq!(
        warm_summary.rejected, 1,
        "rejection repeats on a warm store"
    );
    assert_eq!(warm_summary.store_hits, 1);
    assert_eq!(warm_summary.evaluated, 0);
    assert_eq!(outcome_stream(&warm_out), outcome_stream(&cold_out));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn worker_count_never_changes_the_outcome_stream() {
    // The wave runner hands fresh flows to run_many; its work-stealing
    // schedule must stay invisible in the deterministic outcome lines,
    // whatever the pool width or wave size.
    let lines: Vec<String> = (0..6)
        .map(|i| format!("{{\"design\":\"fuzz:{}\",\"options\":\"bs\"}}", i % 4))
        .collect();
    let mut narrow = JobServer::new(ServeConfig {
        workers: 1,
        wave: 2,
        ..ServeConfig::default()
    });
    let mut wide = JobServer::new(ServeConfig {
        workers: 4,
        wave: 32,
        ..ServeConfig::default()
    });
    let (narrow_out, narrow_summary) = serve(&mut narrow, &lines);
    let (wide_out, wide_summary) = serve(&mut wide, &lines);
    assert_eq!(outcome_stream(&narrow_out), outcome_stream(&wide_out));
    assert_eq!(narrow_summary.evaluated, 4, "4 unique configurations");
    assert_eq!(wide_summary.evaluated, 4);
    assert_eq!(narrow_summary.dedup_hits, 2);
    assert_eq!(wide_summary.dedup_hits, 2);
}

#[test]
fn store_sharing_between_serve_and_plain_sessions_is_transparent() {
    // A result published by a direct FlowSession user (e.g. the DSE
    // driver with --artifacts) must answer a later serve job for the
    // same configuration, because both sides key by Flow::config_key.
    use hlsb::{Flow, FlowSession, PlaceEffort};
    let dir = scratch("cross_tool");
    let store = Arc::new(ArtifactStore::open(&dir).unwrap());

    // Mirror JobSpec's defaults (fast effort, one placement seed) so the
    // config keys agree.
    let design = hlsb_sim::random_design(21);
    let flow = Flow::new(design)
        .device(hlsb_fabric::Device::ultrascale_plus_vu9p())
        .clock_mhz(300.0)
        .place_effort(PlaceEffort::Fast)
        .place_seeds(1)
        .seed(1)
        .verify(true);
    let session = FlowSession::with_threads(1)
        .with_backend(store.clone() as Arc<dyn hlsb_store::ArtifactBackend>);
    let result = session.run(&flow).expect("flow");
    store
        .put_result(flow.store_record("direct", &result, 1.0))
        .unwrap();

    // fuzz:21 resolves to the same design, device and clock — the serve
    // job must be answered from the store without evaluation.
    let rewarmed = Arc::new(ArtifactStore::open(&dir).unwrap());
    let mut server = JobServer::with_store(ServeConfig::default(), rewarmed);
    let (out, summary) = serve(&mut server, &["{\"design\":\"fuzz:21\"}".to_string()]);
    assert_eq!(summary.evaluated, 0);
    assert_eq!(summary.store_hits, 1);
    assert_eq!(out[0].status, JobStatus::Done);
    let rec = out[0].record.as_ref().expect("stored record");
    assert_eq!(rec.label, "direct", "the stored record answers verbatim");
    assert_eq!(rec.fmax_mhz, result.fmax_mhz);
    std::fs::remove_dir_all(&dir).unwrap();
}
