//! Lint-vs-STA cross-check: the static analyzer's predictions against
//! the post-route critical paths of the paper's nine benchmarks.
//!
//! Two layers:
//!
//! * full-size designs, static only — every Table-1 benchmark carries at
//!   least one implicit broadcast by construction, so the lint must flag
//!   all nine without placing anything;
//! * reduced-size designs through the whole flow (as in
//!   `benchmarks_shape.rs`) with the lint pre-pass enabled — the fired
//!   rules are scored as precision/recall against the broadcast classes
//!   observed on the unoptimized critical path.

use hlsb::{Flow, OptimizationOptions, PlaceEffort};
use hlsb_benchmarks::{
    all_benchmarks, face_detect, genome, hbm_stencil, lstm, matmul, pattern_match, stencil,
    stream_buffer, vector_arith,
};
use hlsb_fabric::Device;
use hlsb_ir::Design;
use hlsb_lint::{classify_critical_cell, cross_check_classes, lint_design, CrossCheck};

#[test]
fn lint_flags_all_nine_table1_benchmarks() {
    for b in all_benchmarks() {
        let report = lint_design(&b.design, &b.device, b.clock_mhz);
        assert!(
            !report.is_clean(),
            "{} is a broadcast benchmark but linted clean",
            b.name
        );
        // Every finding carries a location, a positive factor and a
        // calibrated penalty estimate.
        for d in &report.diagnostics {
            assert!(d.broadcast_factor >= 1, "{}: {:?}", b.name, d);
            assert!(d.est_penalty_ns >= 0.0 && d.est_penalty_ns.is_finite());
            assert!(!d.message.is_empty() && !d.remedy.is_empty());
        }
    }
}

#[test]
fn lint_matches_table1_broadcast_types() {
    // Table 1 labels each benchmark with its broadcast type; the static
    // rules must agree on the full-size designs: a data-typed benchmark
    // fires BA01/BA02, a control-typed one PC01, a sync-typed one SY01.
    for b in all_benchmarks() {
        let report = lint_design(&b.design, &b.device, b.clock_mhz);
        let ty = b.broadcast_type.to_lowercase();
        if ty.contains("data") {
            assert!(
                report.has_rule("BA01") || report.has_rule("BA02"),
                "{} ({ty}) missing data finding:\n{}",
                b.name,
                report.to_table()
            );
        }
        if ty.contains("ctrl") {
            assert!(
                report.has_rule("PC01"),
                "{} ({ty}) missing stall finding:\n{}",
                b.name,
                report.to_table()
            );
        }
        if ty.contains("sync") {
            assert!(
                report.has_rule("SY01"),
                "{} ({ty}) missing sync finding:\n{}",
                b.name,
                report.to_table()
            );
        }
    }
}

/// Reduced-size variants of the nine benchmarks (same parameters as
/// `benchmarks_shape.rs`) so the full flow stays fast.
fn reduced_benchmarks() -> Vec<(Design, Device)> {
    vec![
        (genome::design(32), Device::ultrascale_plus_vu9p()),
        (lstm::design(16), Device::ultrascale_plus_vu9p()),
        (face_detect::design(5, 24), Device::zynq_zc706()),
        (matmul::design(16, 4), Device::ultrascale_plus_vu9p()),
        (
            stream_buffer::design(1 << 17),
            Device::ultrascale_plus_vu9p(),
        ),
        (stencil::design(4), Device::ultrascale_plus_vu9p()),
        (vector_arith::design(64, 4), Device::ultrascale_plus_vu9p()),
        (hbm_stencil::design(8, 4), Device::alveo_u50()),
        (pattern_match::design(16, 16), Device::virtex7()),
    ]
}

/// Fanout at which a critical-path net counts as observed data-broadcast
/// evidence (well above the fanout of ordinary datapath nets).
const EVIDENCE_FANOUT: usize = 8;

#[test]
fn lint_precision_recall_vs_post_route_critical_paths() {
    let mut total = CrossCheck::default();
    let mut scored = 0usize;
    for (design, device) in reduced_benchmarks() {
        let name = design.name.clone();
        let (result, netlist, _placement) = Flow::new(design)
            .device(device)
            .clock_mhz(300.0)
            .options(OptimizationOptions::none())
            .place_effort(PlaceEffort::Fast)
            .place_seeds(1)
            .seed(0xDAC2)
            .lint(true)
            .run_detailed()
            .expect("flow succeeds");
        let report = result.lint.as_ref().expect("lint attached");

        // Observed evidence: broadcast-classed cell names on the critical
        // path, plus any critical cell driving a genuinely wide net.
        let mut observed: Vec<&str> = result
            .critical_cells
            .iter()
            .filter_map(|c| classify_critical_cell(c))
            .collect();
        for &c in &result.timing.critical_path {
            if let Some(net) = netlist.output_net(c) {
                if netlist.net(net).fanout() >= EVIDENCE_FANOUT {
                    observed.push("BA01");
                }
            }
        }

        let fired: Vec<&str> = ["BA01", "BA02", "PC01", "SY01"]
            .into_iter()
            .filter(|r| report.has_rule(r))
            .collect();
        if observed.is_empty() {
            // At reduced sizes some critical paths are plain logic depth:
            // no broadcast evidence either way, so the benchmark cannot
            // corroborate or refute the static prediction.
            println!(
                "{name:<20} fired=[{}] observed=[] (skipped)",
                fired.join(",")
            );
            continue;
        }
        scored += 1;
        let cc = cross_check_classes(report, &observed);
        println!(
            "{name:<20} fired=[{}] observed={observed:?} tp={} fp={} fn={}",
            fired.join(","),
            cc.true_pos,
            cc.false_pos,
            cc.false_neg
        );
        total.merge(cc);
    }
    println!(
        "cross-check over {scored} benchmarks with evidence: tp={} fp={} fn={} \
         precision={:.2} recall={:.2}",
        total.true_pos,
        total.false_pos,
        total.false_neg,
        total.precision(),
        total.recall()
    );
    assert!(
        scored >= 3,
        "too few benchmarks produced critical-path evidence"
    );
    // The static pass must recover the broadcast classes that actually
    // dominate the routed critical paths (recall), without flagging much
    // that never materializes (precision). Bounds are loose: the reduced
    // designs are below the paper's sizes, so some flagged broadcasts
    // legitimately stay off the critical path.
    assert!(
        total.recall() >= 0.75,
        "recall {:.2} too low (tp={} fn={})",
        total.recall(),
        total.true_pos,
        total.false_neg
    );
    assert!(
        total.precision() >= 0.4,
        "precision {:.2} too low (tp={} fp={})",
        total.precision(),
        total.true_pos,
        total.false_pos
    );
}
