//! Mutation tests of `hlsb-verify`: plant one known defect class into a
//! known-good benchmark (or its cached flow artifacts) and assert the
//! verifier reports exactly that defect, with a precise SARIF location.
//! Where the defect has a dynamic shadow (the channel-cycle deadlock),
//! the timed simulator confirms the static verdict.

use hlsb_delay::HlsPredictedModel;
use hlsb_findings::Diagnostic;
use hlsb_ir::{DataType, Design, Dfg, Kernel, Loop, OpKind, PipelinePragma};
use hlsb_rtlgen::{lower_design, ControlStyle, RtlOptions, ScheduledDesign, ScheduledLoop};
use hlsb_sched::{schedule_loop, MemAccessPlan, CLOCK_MARGIN};
use hlsb_sim::{simulate_design, SimOptions, Stimulus};
use hlsb_verify::{check_lower, check_schedule, verify_network, LoopContract};

/// FIFO id of `name` in `design`.
fn fifo_id(design: &Design, name: &str) -> hlsb_ir::FifoId {
    let idx = design
        .fifos
        .iter()
        .position(|f| f.name == name)
        .unwrap_or_else(|| panic!("benchmark has a fifo named {name}"));
    hlsb_ir::FifoId(idx as u32)
}

/// Every finding must carry the planted rule — a mutation that trips
/// bystander rules is not a precise detection.
fn assert_only_rule(diags: &[Diagnostic], rule: &str) {
    assert!(!diags.is_empty(), "planted {rule} was not detected");
    for d in diags {
        assert_eq!(d.rule, rule, "bystander finding: {d:?}");
    }
}

/// Schedules every loop of a design with the stock predicted model at a
/// 300 MHz-ish clock — the raw material the artifact mutations corrupt.
fn scheduled(design: &Design) -> Vec<Vec<ScheduledLoop>> {
    let model = HlsPredictedModel::new();
    design
        .kernels
        .iter()
        .map(|k| {
            k.loops
                .iter()
                .map(|lp| ScheduledLoop {
                    schedule: schedule_loop(lp, design, &model, 3.33),
                    looop: lp.clone(),
                    mem_plan: MemAccessPlan::default(),
                })
                .collect()
        })
        .collect()
}

/// Contract views over a scheduled design, for `check_schedule`.
fn contracts<'a>(design: &'a Design, loops: &'a [Vec<ScheduledLoop>]) -> Vec<LoopContract<'a>> {
    design
        .kernels
        .iter()
        .zip(loops)
        .flat_map(|(k, sls)| {
            sls.iter().map(|sl| LoopContract {
                kernel: &k.name,
                looop: &sl.looop,
                schedule: &sl.schedule,
                splits: &[],
            })
        })
        .collect()
}

#[test]
fn planted_double_writer_is_caught_as_exactly_vn01() {
    // A 2-port HBM stencil scatter, then a rogue kernel that also writes
    // one of its output channels — the classic merge-without-a-merge-
    // kernel mistake. The IR stays structurally valid; only the network
    // discipline is broken.
    let mut design = hlsb_benchmarks::hbm_stencil::design(2, 2);
    let target = fifo_id(&design, "ch0_0");
    let mut body = Dfg::new();
    let iv = body.push(OpKind::IndVar, DataType::Int(64), vec![]);
    body.push(OpKind::FifoWrite(target), DataType::Int(64), vec![iv]);
    design.kernels.push(Kernel {
        name: "rogue".into(),
        loops: vec![Loop {
            name: "w".into(),
            trip_count: 16,
            unroll: 1,
            pipeline: Some(PipelinePragma::ii1()),
            body,
        }],
        static_latency: None,
    });
    hlsb_ir::verify::verify_design(&design).expect("mutation keeps the IR valid");

    let report = verify_network(&design, "U50", 333.0);
    assert_only_rule(&report.diagnostics, "VN01");
    assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
    let d = &report.diagnostics[0];
    assert!(d.subject.contains("ch0_0"), "{d:?}");
    assert_eq!(d.broadcast_factor, 2, "two writer endpoints");
    // The finding anchors at the second (rogue) endpoint, and the SARIF
    // logical location spells out the full design/kernel/loop path.
    assert_eq!(d.location.kernel.as_deref(), Some("rogue"));
    assert_eq!(d.location.looop.as_deref(), Some("w"));
    let sarif = report.to_sarif();
    assert!(
        sarif.contains("\"fullyQualifiedName\":\"hbm_stencil_scatter/rogue/w\""),
        "{sarif}"
    );
    assert!(sarif.contains("\"ruleId\":\"VN01\""));
}

#[test]
fn planted_channel_cycle_is_caught_statically_and_deadlocks_dynamically() {
    // Close a feedback path over the stencil scatter: a kernel that reads
    // a scatter output and writes it back into an HBM input port. The
    // network starts token-free, so the cycle can never clear — VN04
    // statically, and a watchdog deadlock in the timed simulator.
    let mut design = hlsb_benchmarks::hbm_stencil::design(2, 2);
    let back_in = fifo_id(&design, "ch0_0");
    let back_out = fifo_id(&design, "hbm0");
    let mut body = Dfg::new();
    let narrow = body.push(OpKind::FifoRead(back_in), DataType::Int(64), vec![]);
    let wide = body.push(OpKind::Repack, DataType::Bits(512), vec![narrow]);
    body.push(OpKind::FifoWrite(back_out), DataType::Bits(512), vec![wide]);
    design.kernels.push(Kernel {
        name: "feedback".into(),
        loops: vec![Loop {
            name: "fb".into(),
            trip_count: 1 << 20,
            unroll: 1,
            pipeline: Some(PipelinePragma::ii1()),
            body,
        }],
        static_latency: None,
    });
    hlsb_ir::verify::verify_design(&design).expect("mutation keeps the IR valid");

    let report = verify_network(&design, "U50", 333.0);
    assert_only_rule(&report.diagnostics, "VN04");
    assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
    let d = &report.diagnostics[0];
    assert!(d.subject.starts_with("cycle {"), "{d:?}");
    assert!(d.message.contains("scatter_all_ports"), "{d:?}");
    assert!(d.message.contains("feedback"), "{d:?}");

    // Dynamic confirmation: the cycle starves itself from cycle zero and
    // the simulator's idle watchdog declares a deadlock.
    let loops = scheduled(&design);
    let stim = Stimulus::seeded(&design, 7, 16);
    let out = simulate_design(&design, &loops, &stim, &SimOptions::default());
    assert!(out.deadlocked, "planted cycle must deadlock the timed sim");
    assert!(!out.finished);
}

#[test]
fn tampered_chain_offset_is_caught_as_vc01_with_loop_location() {
    // Real benchmark schedule (the stencil scatter loop), then push one
    // op's chain end past the budget without a violation record — what a
    // stale or hand-edited cache entry would look like.
    let design = hlsb_benchmarks::hbm_stencil::design(2, 2);
    let mut loops = scheduled(&design);
    {
        let lcs = contracts(&design, &loops);
        let mut out = Vec::new();
        check_schedule(&lcs, &mut out);
        assert!(
            out.is_empty(),
            "benchmark schedule must start clean: {out:?}"
        );
    }

    let sl = &mut loops[0][0];
    let budget = sl.schedule.clock_ns * CLOCK_MARGIN;
    let victim = sl
        .looop
        .body
        .ids()
        .find(|id| !sl.schedule.violations.contains(id))
        .expect("loop has a non-violation op");
    sl.schedule.ops[victim.index()].offset_ns = budget + 0.5;

    let lcs = contracts(&design, &loops);
    let mut out = Vec::new();
    check_schedule(&lcs, &mut out);
    assert_only_rule(&out, "VC01");
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].location.kernel.as_deref(), Some("scatter_all_ports"));
    assert_eq!(out[0].location.looop.as_deref(), Some("all_flows"));
    assert!((out[0].est_penalty_ns - 0.5).abs() < 1e-6, "{out:?}");
}

#[test]
fn shrunk_skid_buffer_is_caught_as_vc02() {
    // Lower the stencil scatter with skid-buffer control, then shave one
    // slot off a real skid decision — the N+1 bound (§4.3) breaks.
    let design = hlsb_benchmarks::hbm_stencil::design(2, 2);
    let loops = scheduled(&design);
    let sd = ScheduledDesign {
        design: &design,
        loops: &loops,
    };
    let options = RtlOptions {
        control: ControlStyle::Skid { min_area: false },
        sync_pruning: false,
        crossing_slots: 0,
    };
    let mut lowered = lower_design(&sd, &options, &HlsPredictedModel::new());
    assert!(
        !lowered.info.skid_decisions.is_empty(),
        "skid lowering records its buffers"
    );
    let mut out = Vec::new();
    check_lower(&lowered.info, &mut out);
    assert!(
        out.is_empty(),
        "benchmark lowering must start clean: {out:?}"
    );

    lowered.info.skid_decisions[0].depth_slots -= 1;
    let mut out = Vec::new();
    check_lower(&lowered.info, &mut out);
    assert_only_rule(&out, "VC02");
    assert_eq!(out.len(), 1, "{out:?}");
    assert!(out[0].message.contains("N+1 bound"), "{out:?}");
    assert_eq!(
        out[0].location.kernel.as_deref(),
        Some(lowered.info.skid_decisions[0].looop.as_str())
    );
}

#[test]
fn tampered_injected_register_latency_is_caught_as_vc01() {
    // Force-inject registers into a real benchmark loop, then zero the
    // injected register's recorded latency in the (would-be cached)
    // schedule artifact. A zero-latency register chains combinationally
    // instead of cutting the chain it was inserted for — VC01, anchored
    // at the exact kernel/loop.
    let design = hlsb_benchmarks::vector_arith::design(64, 4);
    let model = HlsPredictedModel::new();
    let mut loops = scheduled(&design);

    // First loop where boundary 1 actually cuts a chain.
    let mut found = None;
    'search: for (ki, k) in design.kernels.iter().enumerate() {
        for (li, lp) in k.loops.iter().enumerate() {
            let o = hlsb_sched::inject_registers(lp, &design, &model, 3.33, &[1]);
            if o.inserted_regs >= 1 {
                found = Some((ki, li, o));
                break 'search;
            }
        }
    }
    let (ki, li, outcome) = found.expect("boundary 1 cuts at least one benchmark loop");
    let reg = outcome
        .decisions
        .iter()
        .flat_map(|dec| outcome.looop.body.users(outcome.id_map[dec.cut.index()]))
        .copied()
        .find(|&u| outcome.looop.body.inst(u).kind == OpKind::Reg)
        .expect("each cut feeds its injected register");
    loops[ki][li] = ScheduledLoop {
        schedule: outcome.schedule.clone(),
        looop: outcome.looop.clone(),
        mem_plan: MemAccessPlan::default(),
    };
    {
        let lcs = contracts(&design, &loops);
        let mut out = Vec::new();
        check_schedule(&lcs, &mut out);
        assert!(
            out.is_empty(),
            "injected schedule must start clean: {out:?}"
        );
    }

    loops[ki][li].schedule.ops[reg.index()].latency = 0;
    let lcs = contracts(&design, &loops);
    let mut out = Vec::new();
    check_schedule(&lcs, &mut out);
    assert_only_rule(&out, "VC01");
    assert_eq!(out.len(), 1, "{out:?}");
    assert!(out[0].subject.contains(&reg.to_string()), "{out:?}");
    assert!(out[0].message.contains("latency 0"), "{out:?}");
    assert_eq!(
        out[0].location.kernel.as_deref(),
        Some(design.kernels[ki].name.as_str())
    );
    assert_eq!(
        out[0].location.looop.as_deref(),
        Some(design.kernels[ki].loops[li].name.as_str())
    );
}

#[test]
fn injection_at_nonexistent_boundary_is_a_typed_config_error() {
    // A boundary deeper than every loop's pre-injection schedule names no
    // stage anywhere: the flow must reject the configuration as a typed
    // error — never a panic — and the cached artifact must reject it
    // identically on the retry.
    use hlsb::{Flow, FlowError, FlowSession, RegisterInjection};
    let design = hlsb_benchmarks::vector_arith::design(64, 4);
    let session = FlowSession::new();
    let flow = Flow::new(design)
        .clock_mhz(333.0)
        .inject(RegisterInjection::at(vec![10_000]));
    for attempt in 0..2 {
        let err = session
            .run(&flow)
            .expect_err("boundary 10000 exists nowhere");
        match err {
            FlowError::BadParameter { what } => {
                assert!(what.contains("10000"), "attempt {attempt}: {what}")
            }
            other => panic!("attempt {attempt}: wrong error type: {other}"),
        }
    }
}

#[test]
fn illegal_sync_prune_is_caught_as_vc03() {
    // Vector product with 4 parallel dot PEs, lowered with §4.2 sync
    // pruning on — the real flow prunes the tied-latency PEs legally.
    // Then raise one pruned PE's recorded latency above the waited cover:
    // the FSM would advance before that PE finishes.
    let design = hlsb_benchmarks::vector_arith::design(64, 4);
    let loops = scheduled(&design);
    let sd = ScheduledDesign {
        design: &design,
        loops: &loops,
    };
    let options = RtlOptions {
        control: ControlStyle::Stall,
        sync_pruning: true,
        crossing_slots: 0,
    };
    let mut lowered = lower_design(&sd, &options, &HlsPredictedModel::new());
    let pruned = lowered
        .info
        .sync_decisions
        .iter()
        .position(|d| !d.waited)
        .expect("tied-latency PEs leave at least one pruned done-signal");
    let cover = lowered.info.sync_decisions[pruned]
        .cover_latency
        .expect("legal prune records its cover");
    let mut out = Vec::new();
    check_lower(&lowered.info, &mut out);
    assert!(
        out.is_empty(),
        "benchmark lowering must start clean: {out:?}"
    );

    lowered.info.sync_decisions[pruned].latency = Some(cover + 10);
    let mut out = Vec::new();
    check_lower(&lowered.info, &mut out);
    assert_only_rule(&out, "VC03");
    assert_eq!(out.len(), 1, "{out:?}");
    assert!(out[0].message.contains("covers only"), "{out:?}");
    assert!(
        out[0]
            .subject
            .contains(&lowered.info.sync_decisions[pruned].module),
        "{out:?}"
    );
}
