//! Differential simulation: the optimizations are semantics-preserving.
//!
//! For every Table-1 benchmark and a population of seeded random designs,
//! every point of the optimization cube (broadcast-aware × sync-pruning ×
//! skid-buffer) must produce:
//!
//! * the same observable trace as the untimed golden evaluator of the
//!   *same* variant (scheduling/control changed nothing), and
//! * the same golden trace as the baseline variant (the front-end's
//!   dataflow split changed nothing), and
//! * a timed latency consistent with the schedule's own depth/II claims
//!   ([`hlsb::sim::check_latency`]).
//!
//! The mutation tests at the bottom prove the oracle can fail: a single
//! flipped op or an under-reported pipeline depth is detected.

use hlsb::sim::{
    check_latency, golden_trace, random_design, shrink_design, simulate_design, SimOptions,
    Stimulus,
};
use hlsb::{Flow, FlowSession, OptimizationOptions, SimulationOutcome};
use hlsb_delay::HlsPredictedModel;
use hlsb_ir::{Design, OpKind};
use hlsb_rtlgen::ScheduledLoop;
use hlsb_sched::{schedule_loop, MemAccessPlan};

const ITERS_CAP: u64 = 48;

/// The full optimization cube (min-area skid shares the skid control
/// model: the DP split changes buffer placement, not cycle behaviour).
fn combos() -> [OptimizationOptions; 8] {
    let mut out = [OptimizationOptions::none(); 8];
    for (bits, slot) in out.iter_mut().enumerate() {
        *slot = OptimizationOptions {
            broadcast_aware: bits & 1 != 0,
            sync_pruning: bits & 2 != 0,
            skid_buffer: bits & 4 != 0,
            min_area_skid: false,
        };
    }
    out
}

/// Simulates every combo of one design on a shared session and asserts
/// the three properties above. Returns the baseline outcome.
fn assert_all_combos_preserve(
    session: &FlowSession,
    design: &Design,
    device: Option<hlsb_fabric::Device>,
    clock_mhz: f64,
    stim: &Stimulus,
    label: &str,
) -> SimulationOutcome {
    let mut baseline: Option<SimulationOutcome> = None;
    for opts in combos() {
        let mut flow = Flow::new(design.clone()).clock_mhz(clock_mhz).options(opts);
        if let Some(dev) = device.clone() {
            flow = flow.device(dev);
        }
        let sim = session
            .simulate(&flow, stim, ITERS_CAP)
            .unwrap_or_else(|e| panic!("{label} {opts:?}: flow rejected: {e}"));
        sim.check()
            .unwrap_or_else(|e| panic!("{label} {opts:?}: {e}"));
        match &baseline {
            None => baseline = Some(sim),
            Some(base) => {
                if let Some(diff) = sim.golden.diff(&base.golden) {
                    panic!("{label} {opts:?}: golden diverges from baseline: {diff}");
                }
            }
        }
    }
    baseline.expect("at least one combo ran")
}

#[test]
fn all_benchmarks_preserve_semantics_across_the_cube() {
    let session = FlowSession::new();
    for bench in hlsb_benchmarks::all_benchmarks() {
        let stim = Stimulus::seeded(&bench.design, 1, ITERS_CAP as usize);
        let base = assert_all_combos_preserve(
            &session,
            &bench.design,
            Some(bench.device.clone()),
            bench.clock_mhz,
            &stim,
            bench.name,
        );
        assert!(
            !base.golden.is_empty(),
            "{}: benchmark must produce observable output",
            bench.name
        );
        // The simulate pass actually recorded its counters.
        assert_eq!(base.trace.counter("simulate", "trace-match"), Some(1));
        assert!(base.trace.counter("simulate", "cycles").unwrap() > 0);
    }
}

#[test]
fn fuzzed_designs_preserve_semantics_across_the_cube() {
    let session = FlowSession::new();
    let mut nonempty = 0usize;
    for seed in 0..200u64 {
        let design = random_design(seed);
        let stim = Stimulus::seeded(&design, seed, 32);
        let base = assert_all_combos_preserve(
            &session,
            &design,
            None,
            300.0,
            &stim,
            &format!("fuzz seed {seed}"),
        );
        if !base.golden.is_empty() {
            nonempty += 1;
        }
    }
    // The population must be meaningful, not a sea of empty traces.
    assert!(nonempty >= 190, "only {nonempty}/200 designs observable");
    // Variant sweeps shared cached front-end/schedule artifacts.
    let stats = session.cache_stats();
    assert!(
        stats.hits > stats.misses,
        "expected artifact sharing across the cube: {stats:?}"
    );
}

#[test]
fn shrunk_fuzz_designs_still_preserve_semantics() {
    let session = FlowSession::new();
    let mut shrunk = 0usize;
    for seed in [3u64, 11, 42, 77, 123] {
        let mut design = random_design(seed);
        loop {
            let candidates = shrink_design(&design);
            let Some(smaller) = candidates.into_iter().next() else {
                break;
            };
            design = smaller;
            shrunk += 1;
            if shrunk.is_multiple_of(4) {
                break; // keep a mid-shrink shape, not only fixpoints
            }
        }
        let stim = Stimulus::seeded(&design, seed, 32);
        assert_all_combos_preserve(
            &session,
            &design,
            None,
            300.0,
            &stim,
            &format!("shrunk seed {seed}"),
        );
    }
    assert!(shrunk > 0, "shrinker never fired");
}

/// Schedules every loop of a design with the stock predicted model —
/// the raw material the mutation tests corrupt.
fn naive_scheduled(design: &Design) -> Vec<Vec<ScheduledLoop>> {
    let model = HlsPredictedModel::new();
    design
        .kernels
        .iter()
        .map(|k| {
            k.loops
                .iter()
                .map(|lp| ScheduledLoop {
                    schedule: schedule_loop(lp, design, &model, 3.0),
                    looop: lp.clone(),
                    mem_plan: MemAccessPlan::default(),
                })
                .collect()
        })
        .collect()
}

#[test]
fn functional_mutation_is_detected() {
    // x + c with c != 0: flipping the add to a sub must change the trace.
    let mut b = hlsb_ir::builder::DesignBuilder::new("mut");
    let fin = b.fifo("in", hlsb_ir::DataType::Int(32), 2);
    let fout = b.fifo("out", hlsb_ir::DataType::Int(32), 2);
    let mut k = b.kernel("top");
    let mut l = k.pipelined_loop("main", 8, 1);
    let c = l.constant("c", hlsb_ir::DataType::Int(32));
    let x = l.fifo_read(fin, hlsb_ir::DataType::Int(32));
    let s = l.add(x, c);
    l.fifo_write(fout, s);
    l.finish();
    k.finish();
    let design = b.finish().unwrap();

    let mut stim = Stimulus::seeded(&design, 5, 8);
    stim.constants.insert("c".into(), 7);
    let bodies: Vec<Vec<hlsb_ir::Loop>> = design.kernels.iter().map(|k| k.loops.clone()).collect();
    let golden = golden_trace(&design, &bodies, &stim, ITERS_CAP);

    let mut loops = naive_scheduled(&design);
    let healthy = simulate_design(&design, &loops, &stim, &SimOptions::default());
    assert_eq!(healthy.trace.diff(&golden), None, "sanity: unmutated run");

    // Corrupt the scheduled body the way a broken transform would: the
    // op kind flips but the schedule itself stays plausible.
    let body = &mut loops[0][0].looop.body;
    let target = body
        .iter()
        .find(|(_, inst)| inst.kind == OpKind::Add)
        .map(|(id, _)| id)
        .expect("design has an add");
    body.inst_mut(target).kind = OpKind::Sub;

    let mutated = simulate_design(&design, &loops, &stim, &SimOptions::default());
    let diff = mutated
        .trace
        .diff(&golden)
        .expect("oracle must catch the flipped op");
    assert!(diff.contains("fifo"), "{diff}");
}

#[test]
fn timing_mutation_is_detected() {
    // A schedule that under-reports its own depth (claims a 1-cycle pipe
    // while committing at cycle 20) must fail the latency consistency
    // check even though the values are still right.
    let design = random_design(9);
    let stim = Stimulus::seeded(&design, 9, 32);
    let mut loops = naive_scheduled(&design);

    let (k, l, victim) = loops
        .iter()
        .enumerate()
        .flat_map(|(k, ls)| ls.iter().enumerate().map(move |(l, sl)| (k, l, sl)))
        .find_map(|(k, l, sl)| {
            sl.looop
                .body
                .iter()
                .find(|(_, inst)| matches!(inst.kind, OpKind::FifoWrite(_)))
                .map(|(id, _)| (k, l, id))
        })
        .expect("fuzz designs always write a fifo");
    let sl = &mut loops[k][l];
    sl.schedule.ops[victim.index()].cycle = 20;
    sl.schedule.depth = 1;

    let out = simulate_design(&design, &loops, &stim, &SimOptions::default());
    assert!(out.finished, "mutation must not deadlock the sim");
    check_latency(&out).expect_err("under-reported depth must be caught");
}
