//! Integration tests of the `hlsb-dse` explorer: determinism of the
//! search, resume-after-interrupt through the JSONL store, the
//! successive-halving efficiency claim, and the quality of the frontier
//! against the all-optimizations default.

use hlsb::{FlowSession, OptimizationOptions};
use hlsb_benchmarks::all_benchmarks;
use hlsb_dse::{DseReport, Explorer, KnobSpace, ResultStore, Strategy};
use hlsb_fabric::Device;
use hlsb_ir::builder::DesignBuilder;
use hlsb_ir::{DataType, Design};

/// A small broadcast-heavy design: cheap to place, yet the optimization
/// knobs still change its fmax/area trade-off.
fn broadcast_design() -> Design {
    let mut b = DesignBuilder::new("dse_bcast");
    let fin = b.fifo("in", DataType::Int(32), 2);
    let fout = b.fifo("out", DataType::Int(32), 2);
    let mut k = b.kernel("top");
    let mut l = k.pipelined_loop("body", 64, 1);
    l.set_unroll(16);
    let src = l.invariant_input("src", DataType::Int(32));
    let x = l.fifo_read(fin, DataType::Int(32));
    let d = l.sub(x, src);
    let m = l.abs(d);
    let r = l.min(m, x);
    l.fifo_write(fout, r);
    l.finish();
    k.finish();
    b.finish().expect("valid")
}

fn frontier_signature(report: &DseReport) -> Vec<(String, u64, u64, u64)> {
    report
        .frontier_points()
        .map(|p| {
            (
                p.config.label(),
                p.metrics.fmax_mhz.to_bits(),
                p.metrics.latency_cycles,
                p.metrics.area_cells,
            )
        })
        .collect()
}

/// The frontier as a set of distinct objective vectors (several configs
/// can share one vector; strategies are only required to agree on the
/// vectors, not on which of the tied configs they evaluated).
fn frontier_metric_set(report: &DseReport) -> Vec<(u64, u64, u64)> {
    let mut v: Vec<(u64, u64, u64)> = report
        .frontier_points()
        .map(|p| {
            (
                p.metrics.fmax_mhz.to_bits(),
                p.metrics.latency_cycles,
                p.metrics.area_cells,
            )
        })
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

#[test]
fn same_seed_and_budget_yield_identical_frontier() {
    let design = broadcast_design();
    let device = Device::ultrascale_plus_vu9p();
    let session = FlowSession::new();
    let run = |session: &FlowSession| {
        Explorer::new(&design, &device)
            .space(KnobSpace::optimization_cube(vec![300.0, 333.0]))
            .strategy(Strategy::Random)
            .budget(7)
            .seed(42)
            .verify_iters(0)
            .run(session)
            .expect("in-memory store")
    };
    let a = run(&session);
    // A fresh session too: the artifact cache must not change results.
    let b = run(&FlowSession::new());
    assert_eq!(a.full_evals, 7);
    assert_eq!(frontier_signature(&a), frontier_signature(&b));

    let c = Explorer::new(&design, &device)
        .space(KnobSpace::optimization_cube(vec![300.0, 333.0]))
        .strategy(Strategy::Random)
        .budget(7)
        .seed(43)
        .verify_iters(0)
        .run(&session)
        .expect("in-memory store");
    assert_ne!(
        a.points.iter().map(|p| p.key).collect::<Vec<_>>(),
        c.points.iter().map(|p| p.key).collect::<Vec<_>>(),
        "a different seed must sample different candidates"
    );
}

#[test]
fn interrupted_sweep_resumes_from_the_store_to_the_same_frontier() {
    let design = broadcast_design();
    let device = Device::ultrascale_plus_vu9p();
    let space = KnobSpace::optimization_cube(vec![300.0]);
    let session = FlowSession::new();

    let reference = Explorer::new(&design, &device)
        .space(space.clone())
        .verify_iters(0)
        .run(&session)
        .expect("in-memory store");
    assert_eq!(reference.full_evals, 12, "the cube has 12 canonical points");

    let dir = std::env::temp_dir().join("hlsb_dse_search_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("resume_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // "Kill" the sweep after 5 evaluations: a budget-truncated grid run
    // persists exactly what an interrupted full run would have flushed.
    let partial = Explorer::new(&design, &device)
        .space(space.clone())
        .budget(5)
        .store(ResultStore::open(&path).unwrap())
        .verify_iters(0)
        .run(&session)
        .expect("file store");
    assert_eq!(partial.full_evals, 5);

    // Resume against the same file with a fresh session: the 5 stored
    // evaluations are served without re-running place-and-route.
    let resumed = Explorer::new(&design, &device)
        .space(space)
        .store(ResultStore::open(&path).unwrap())
        .verify_iters(0)
        .run(&FlowSession::new())
        .expect("file store");
    assert_eq!(resumed.store_hits, 5);
    assert_eq!(resumed.full_evals, 7);
    assert_eq!(frontier_signature(&resumed), frontier_signature(&reference));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn halving_matches_grid_and_the_frontier_beats_the_all_options_default() {
    // The paper's flagship broadcast benchmark: its implicit broadcasts
    // trip the lint rules, so the cheap proxy ranks the cube faithfully.
    let benches = all_benchmarks();
    let bench = benches
        .iter()
        .find(|b| b.design.name == "vector_product")
        .expect("Table-1 benchmark");
    let session = FlowSession::new();

    let grid = Explorer::new(&bench.design, &bench.device)
        .space(KnobSpace::optimization_cube(vec![bench.clock_mhz]))
        .strategy(Strategy::Grid)
        .verify_iters(4)
        .run(&session)
        .expect("in-memory store");
    let halving = Explorer::new(&bench.design, &bench.device)
        .space(KnobSpace::optimization_cube(vec![bench.clock_mhz]))
        .strategy(Strategy::SuccessiveHalving)
        .budget(6)
        .verify_iters(0)
        .run(&session)
        .expect("in-memory store");

    // The halving acceptance claim: same objective frontier as the
    // exhaustive grid with at most half the place-and-route spend.
    assert!(
        halving.full_evals * 2 <= grid.full_evals,
        "halving spent {} full evaluations, grid {}",
        halving.full_evals,
        grid.full_evals
    );
    assert_eq!(
        frontier_metric_set(&halving),
        frontier_metric_set(&grid),
        "halving must land on the same objective frontier as the grid"
    );

    // The frontier quality claim against the all-optimizations default.
    let report = grid;
    let default = report
        .points
        .iter()
        .find(|p| p.config.options == OptimizationOptions::all())
        .expect("the cube contains the all-optimizations default");
    assert!(
        report.frontier_points().any(|p| {
            p.metrics.fmax_mhz >= default.metrics.fmax_mhz
                && p.metrics.latency_cycles <= default.metrics.latency_cycles
        }),
        "some frontier config must reach the default's fmax at no worse latency"
    );

    // Satellite: every Pareto-optimal configuration is differentially
    // simulated against the untimed golden reference.
    for p in report.frontier_points() {
        assert!(
            matches!(p.sim_check, Some(Ok(()))),
            "{} failed simulation: {:?}",
            p.config.label(),
            p.sim_check
        );
    }
    assert!(report.frontier_semantics_ok());
    // Non-frontier points are not simulated — the check is targeted.
    assert!(report
        .points
        .iter()
        .enumerate()
        .filter(|(i, _)| !report.frontier.contains(i))
        .all(|(_, p)| p.sim_check.is_none()));
}

#[test]
fn dse_counters_account_for_every_candidate() {
    let design = broadcast_design();
    let device = Device::ultrascale_plus_vu9p();
    let session = FlowSession::new();
    let report = Explorer::new(&design, &device)
        .space(KnobSpace::optimization_cube(vec![300.0]))
        .strategy(Strategy::SuccessiveHalving)
        .budget(4)
        .verify_iters(0)
        .run(&session)
        .expect("in-memory store");
    assert_eq!(report.probe_evals, 12, "halving probes the whole cube");
    assert_eq!(report.full_evals, 4);
    assert_eq!(report.budget_dropped, 8);
    assert_eq!(report.points.len(), 4);
    let dse = report
        .trace
        .records
        .iter()
        .find(|r| r.pass == "dse")
        .expect("the trace carries a dse record");
    let counter = |name: &str| {
        dse.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    };
    assert_eq!(counter("probe-evals"), Some(12));
    assert_eq!(counter("full-evals"), Some(4));
    assert_eq!(counter("frontier"), Some(report.frontier.len() as u64));
    assert_eq!(counter("sim-checked"), Some(0), "verification disabled");
    // Probes and full runs share front-end artifacts through the session
    // cache; with 12 probes + 4 full runs over one design the front-end
    // must be reused far more often than computed.
    assert!(
        report.cache_delta.front_end.hits > report.cache_delta.front_end.misses,
        "expected front-end reuse, got {:?}",
        report.cache_delta.front_end
    );
}
