//! Zero-false-positive guarantees of `hlsb-verify`: every shipped
//! benchmark, a 200-design fuzz corpus, and the hlsb-dse frontier must
//! all come back clean. Any finding here is an analyzer (or generator)
//! bug, not a design bug.

use hlsb::{Flow, FlowSession, OptimizationOptions};
use hlsb_benchmarks::all_benchmarks;
use hlsb_dse::{Explorer, KnobSpace, Strategy};
use hlsb_fabric::Device;

#[test]
fn all_nine_benchmarks_probe_verify_clean() {
    let benches = all_benchmarks();
    assert_eq!(benches.len(), 9, "the paper's Table 1 has nine benchmarks");
    let session = FlowSession::new();
    for b in &benches {
        let flow = Flow::new(b.design.clone())
            .device(b.device.clone())
            .clock_mhz(b.clock_mhz)
            .options(OptimizationOptions::all())
            .verify(true);
        let probe = session
            .probe(&flow)
            .unwrap_or_else(|e| panic!("{} rejected: {e}", b.design.name));
        let report = probe.verify.expect("probe ran with Flow::verify on");
        assert!(
            report.is_clean(),
            "{} has findings: {}",
            b.design.name,
            report.to_table()
        );
    }
}

#[test]
fn benchmark_network_analysis_is_clean_standalone() {
    // Same guarantee without the flow in the loop — the raw network pass
    // on the untouched input IR.
    for b in &all_benchmarks() {
        let report = hlsb_verify::verify_network(&b.design, &b.device.name, b.clock_mhz);
        assert!(
            report.is_clean(),
            "{} network findings: {}",
            b.design.name,
            report.to_table()
        );
    }
}

#[test]
fn two_hundred_fuzz_designs_are_verify_clean() {
    for seed in 0..200u64 {
        let d = hlsb_sim::random_design(seed);
        let report = hlsb_verify::verify_network(&d, "fuzz", 300.0);
        assert!(
            report.is_clean(),
            "seed {seed} ({}) has findings: {}",
            d.name,
            report.to_table()
        );
    }
}

#[test]
fn dse_frontier_survives_an_explicit_verify_pass() {
    // Every flow the explorer evaluates already runs with the verify
    // pre-gate on; re-probe each frontier config independently to pin the
    // guarantee down to the surviving points themselves.
    let bench = all_benchmarks()
        .into_iter()
        .find(|b| b.design.name.contains("stream"))
        .expect("stream buffer benchmark exists");
    let device = Device::ultrascale_plus_vu9p();
    let session = FlowSession::new();
    let report = Explorer::new(&bench.design, &device)
        .space(KnobSpace::optimization_cube(vec![300.0]))
        .strategy(Strategy::Random)
        .budget(4)
        .seed(11)
        .verify_iters(0)
        .run(&session)
        .expect("in-memory store");
    assert!(
        report.network_report.is_none(),
        "benchmark must pass the network pre-filter"
    );
    let frontier: Vec<_> = report.frontier_points().collect();
    assert!(!frontier.is_empty(), "explorer found no frontier");
    for p in &frontier {
        let flow = p.config.flow(&bench.design, &device, 0).verify(true);
        let probe = session
            .probe(&flow)
            .unwrap_or_else(|e| panic!("frontier config {} rejected: {e}", p.config.label()));
        let rep = probe.verify.expect("probe ran with Flow::verify on");
        assert!(
            rep.is_clean(),
            "frontier config {} has findings: {}",
            p.config.label(),
            rep.to_table()
        );
    }
}
