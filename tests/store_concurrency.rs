//! Durability of the persistent artifact store under concurrent writers,
//! kill/resume cycles and arbitrary truncation — the compile-farm store
//! must never lose a completed append, never resurrect a partial line,
//! and always converge when several handles share one directory.

use std::path::PathBuf;
use std::sync::Arc;

use hlsb_rng::Rng;
use hlsb_store::{
    ArtifactBackend, ArtifactStore, JsonlRecord, ResultRecord, StageKind, SHARD_COUNT,
};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("hlsb_store_concurrency_test")
        .join(format!("{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A pseudo-random result record; quotes and backslashes in the string
/// fields exercise the JSON escaping, and the raw `next_u64` key spreads
/// records across every shard.
fn random_result(rng: &mut Rng) -> ResultRecord {
    let designs = ["spam_filter", "face \"detect\"", "a\\b"];
    let labels = ["bskm s1 x2 fast", "---- @300.0MHz", "×weird×"];
    ResultRecord {
        key: rng.next_u64(),
        design: designs[rng.gen_index(designs.len())].into(),
        label: labels[rng.gen_index(labels.len())].into(),
        fmax_mhz: 50.0 + rng.gen_f64() * 700.0,
        period_ns: 1.0 + rng.gen_f64() * 20.0,
        latency_cycles: rng.gen_u64(1, 1 << 20),
        luts: rng.gen_u64(0, 1 << 20),
        ffs: rng.gen_u64(0, 1 << 20),
        brams: rng.gen_u64(0, 2048),
        dsps: rng.gen_u64(0, 6840),
        inserted_regs: rng.gen_u64(0, 4096),
        duplicated_regs: rng.gen_u64(0, 4096),
        retime_moves: rng.gen_u64(0, 256),
        wall_ms: rng.gen_f64() * 1e4,
    }
}

/// Every line of every segment file must parse — concurrent appends may
/// interleave records but never tear a line.
fn assert_all_lines_whole(dir: &std::path::Path) -> usize {
    let mut lines = 0;
    for shard in 0..SHARD_COUNT {
        let path = dir.join(format!("results-{shard}.jsonl"));
        if !path.exists() {
            continue;
        }
        for line in std::fs::read_to_string(&path).unwrap().lines() {
            assert!(
                ResultRecord::from_json(line).is_some(),
                "torn line in shard {shard}: {line}"
            );
            lines += 1;
        }
    }
    lines
}

#[test]
fn two_handles_appending_concurrently_converge() {
    // Two store handles on one directory — the same setup as two
    // processes, since each append takes the directory's file lock.
    // Writers use disjoint keys plus a contended overlap; afterwards a
    // fresh handle must see the union, with every overlap key holding
    // one of the two written records (no torn or interleaved lines).
    let dir = scratch("two_handles");
    let a = ArtifactStore::open(&dir).unwrap();
    let b = ArtifactStore::open(&dir).unwrap();

    let mut rng = Rng::seed_from_u64(0xC0_FFEE);
    let mut a_recs: Vec<ResultRecord> = (0..60).map(|_| random_result(&mut rng)).collect();
    let mut b_recs: Vec<ResultRecord> = (0..60).map(|_| random_result(&mut rng)).collect();
    // Overlap: the last 10 keys are shared, with different payloads.
    for (ra, rb) in a_recs
        .iter_mut()
        .rev()
        .zip(b_recs.iter_mut().rev())
        .take(10)
    {
        rb.key = ra.key;
        rb.fmax_mhz = ra.fmax_mhz + 1.0;
    }

    std::thread::scope(|s| {
        s.spawn(|| {
            for rec in &a_recs {
                a.put_result(rec.clone()).unwrap();
                a.publish(StageKind::FrontEnd, rec.key, rec.key ^ 0xF00D, 0.5);
                a.publish(StageKind::Schedule, rec.key, rec.key ^ 0xBEEF, 0.5);
            }
        });
        s.spawn(|| {
            for rec in &b_recs {
                b.put_result(rec.clone()).unwrap();
                b.publish(StageKind::FrontEnd, rec.key, rec.key ^ 0xF00D, 0.5);
                b.publish(StageKind::Schedule, rec.key, rec.key ^ 0xBEEF, 0.5);
            }
        });
    });
    assert_eq!(a.io_errors(), 0);
    assert_eq!(b.io_errors(), 0);

    let merged = ArtifactStore::open(&dir).unwrap();
    assert_eq!(merged.result_count(), 110, "60 + 60 - 10 overlapping keys");
    assert_eq!(
        merged.stage_count(),
        220,
        "two stage kinds per distinct key"
    );
    for rec in a_recs.iter().chain(&b_recs) {
        let got = merged.get_result(rec.key).expect("no record lost");
        let a_wrote = a_recs.iter().any(|r| r.to_json() == got.to_json());
        let b_wrote = b_recs.iter().any(|r| r.to_json() == got.to_json());
        assert!(
            a_wrote || b_wrote,
            "key {} holds a record neither writer produced: {}",
            rec.key,
            got.to_json()
        );
        assert_eq!(
            merged.lookup(StageKind::FrontEnd, rec.key),
            Some(rec.key ^ 0xF00D)
        );
        assert_eq!(
            merged.lookup(StageKind::Schedule, rec.key),
            Some(rec.key ^ 0xBEEF)
        );
    }
    assert_eq!(
        assert_all_lines_whole(&dir),
        120,
        "one whole line per append"
    );

    // The original handles converge too, via reload.
    a.reload().unwrap();
    assert_eq!(a.result_count(), 110);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn kill_resume_cycles_never_lose_completed_appends() {
    // Each round: open a fresh handle (a resumed process), append a few
    // records, then die mid-append — simulated by writing a partial line
    // straight to a random shard segment. Completed records must survive
    // every cycle; partial lines must never resurrect and never glue
    // onto the next round's appends.
    let dir = scratch("kill_resume");
    let mut rng = Rng::seed_from_u64(0xDEAD_0001);
    let mut latest: std::collections::HashMap<u64, ResultRecord> = std::collections::HashMap::new();

    for round in 0..8 {
        let store = ArtifactStore::open(&dir).unwrap();
        assert_eq!(
            store.result_count(),
            latest.len(),
            "round {round}: resumed handle lost or invented records"
        );
        for _ in 0..6 {
            let mut rec = random_result(&mut rng);
            // Every third round rewrites an existing key: later wins.
            if round % 3 == 2 && !latest.is_empty() {
                let keys: Vec<u64> = latest.keys().copied().collect();
                rec.key = keys[rng.gen_index(keys.len())];
            }
            store.put_result(rec.clone()).unwrap();
            latest.insert(rec.key, rec);
        }
        drop(store);

        // The kill: a half-written line at the tail of a random shard.
        let shard = rng.gen_index(SHARD_COUNT);
        let path = dir.join(format!("results-{shard}.jsonl"));
        let mut bytes = std::fs::read(&path).unwrap_or_default();
        bytes.extend_from_slice(b"{\"key\":12345,\"design\":\"half");
        std::fs::write(&path, bytes).unwrap();
    }

    let survivor = ArtifactStore::open(&dir).unwrap();
    assert_eq!(survivor.result_count(), latest.len());
    for (key, rec) in &latest {
        assert_eq!(
            survivor.get_result(*key).map(|r| r.to_json()),
            Some(rec.to_json()),
            "key {key} must hold its latest append"
        );
    }
    // One more append per shard heals every tail; after that the files
    // hold only whole lines (the healed partials end with a newline and
    // are skipped as malformed, not parsed).
    for shard in 0..SHARD_COUNT as u64 {
        let mut rec = random_result(&mut rng);
        rec.key = rec.key - (rec.key % SHARD_COUNT as u64) + shard;
        survivor.put_result(rec.clone()).unwrap();
        latest.insert(rec.key, rec);
    }
    let reopened = ArtifactStore::open(&dir).unwrap();
    assert_eq!(reopened.result_count(), latest.len());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncation_at_random_byte_never_corrupts_a_shard() {
    // The PR 8 log-fuzz pattern lifted to the sharded store: fill every
    // shard, then repeatedly truncate one segment at a random byte and
    // reopen. Records whose line fully precedes the cut survive exactly;
    // records after it vanish; every other shard is untouched.
    let dir = scratch("truncate_fuzz");
    let mut rng = Rng::seed_from_u64(0xF4E9_0002);
    let store = ArtifactStore::open(&dir).unwrap();
    let records: Vec<ResultRecord> = (0..96).map(|_| random_result(&mut rng)).collect();
    // Per-shard append order, replayed below to predict survivors.
    let mut per_shard: Vec<Vec<&ResultRecord>> = vec![Vec::new(); SHARD_COUNT];
    for rec in &records {
        store.put_result(rec.clone()).unwrap();
        per_shard[ArtifactStore::shard_of(rec.key)].push(rec);
    }
    drop(store);
    let pristine: Vec<Vec<u8>> = (0..SHARD_COUNT)
        .map(|s| std::fs::read(dir.join(format!("results-{s}.jsonl"))).unwrap())
        .collect();

    for trial in 0..48 {
        let shard = rng.gen_index(SHARD_COUNT);
        let blob = &pristine[shard];
        let cut = rng.gen_index(blob.len() + 1);
        let path = dir.join(format!("results-{shard}.jsonl"));
        std::fs::write(&path, &blob[..cut]).unwrap();

        let store = ArtifactStore::open(&dir).unwrap();
        // Replay: a record survives iff its complete JSON text fits in
        // the prefix (losing only the trailing newline still parses),
        // later duplicates winning. Keys are random u64s here, so
        // duplicates cannot occur and order alone decides.
        let mut expected = 0usize;
        let mut offset = 0usize;
        for rec in &per_shard[shard] {
            let line_len = rec.to_json().len() + 1;
            if offset + line_len - 1 <= cut {
                expected += 1;
                assert_eq!(
                    store.get_result(rec.key).map(|r| r.to_json()),
                    Some(rec.to_json()),
                    "trial {trial}: record before cut {cut} corrupted"
                );
            } else {
                assert!(
                    store.get_result(rec.key).is_none(),
                    "trial {trial}: record cut at byte {cut} resurrected"
                );
            }
            offset += line_len;
        }
        let surviving_elsewhere: usize = (0..SHARD_COUNT)
            .filter(|&s| s != shard)
            .map(|s| per_shard[s].len())
            .sum();
        assert_eq!(
            store.result_count(),
            expected + surviving_elsewhere,
            "trial {trial}: cut at byte {cut} of shard {shard} leaked across shards"
        );

        std::fs::write(&path, blob).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn contended_single_shard_appends_stay_line_atomic() {
    // Worst-case contention: every key lands in shard 0, two handles
    // hammer it from two threads. The directory lock must serialize the
    // appends into whole lines, and both record families must survive.
    let dir = scratch("single_shard");
    let a = Arc::new(ArtifactStore::open(&dir).unwrap());
    let b = Arc::new(ArtifactStore::open(&dir).unwrap());

    let mut rng = Rng::seed_from_u64(0x5EED_0003);
    let mut make = || -> Vec<ResultRecord> {
        (0..40u64)
            .map(|_| {
                let mut rec = random_result(&mut rng);
                // Shifting left by 3 forces shard 0 (key % 8 == 0) while
                // the random high bits keep keys distinct across writers.
                rec.key <<= 3;
                rec
            })
            .collect()
    };
    let a_recs = make();
    let b_recs = make();
    assert!(a_recs
        .iter()
        .chain(&b_recs)
        .all(|r| ArtifactStore::shard_of(r.key) == 0));

    std::thread::scope(|s| {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        let (ar, br) = (&a_recs, &b_recs);
        s.spawn(move || {
            for rec in ar {
                a.put_result(rec.clone()).unwrap();
            }
        });
        s.spawn(move || {
            for rec in br {
                b.put_result(rec.clone()).unwrap();
            }
        });
    });

    let distinct: std::collections::HashSet<u64> =
        a_recs.iter().chain(&b_recs).map(|r| r.key).collect();
    assert_eq!(assert_all_lines_whole(&dir), 80);
    let merged = ArtifactStore::open(&dir).unwrap();
    assert_eq!(merged.result_count(), distinct.len());
    std::fs::remove_dir_all(&dir).unwrap();
}
