//! Closed-loop Fmax explorer properties: deterministic search, agreement
//! with a brute-force fine-grid sweep, resume-from-log without re-running
//! completed trials, semantics of every converged configuration, and
//! crash-durability of the frequency log.

use std::path::PathBuf;

use hlsb::FlowSession;
use hlsb_benchmarks::{all_benchmarks, Benchmark};
use hlsb_explore::{report, ExploreConfig, FmaxExplorer, FreqLog, TrialKind, TrialRecord};
use hlsb_rng::Rng;

const SEED: u64 = 0xDAC2_2020;

fn bench(name: &str) -> Benchmark {
    all_benchmarks()
        .into_iter()
        .find(|b| b.design.name == name)
        .unwrap_or_else(|| panic!("no benchmark named {name}"))
}

fn temp_log(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hlsb_explore_convergence");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{tag}_{}.jsonl", std::process::id()))
}

#[test]
fn search_is_deterministic_for_a_fixed_seed() {
    let b = bench("lstm_gate");
    let run = || {
        let session = FlowSession::new();
        FmaxExplorer::new(&b.design, &b.device)
            .start_mhz(b.clock_mhz)
            .seed(SEED)
            .run(&session)
            .expect("in-memory log cannot fail")
    };
    let (a, c) = (run(), run());
    assert_eq!(report::comparable_rows(&a), report::comparable_rows(&c));
    for (oa, oc) in a.outcomes.iter().zip(&c.outcomes) {
        assert_eq!(oa.trials, oc.trials, "{}: trial sequences differ", oa.label);
        assert_eq!(oa.full_evals, oc.full_evals, "{}", oa.label);
    }
}

#[test]
fn converged_clock_matches_a_fine_grid_sweep() {
    // The search's expansion/bisection must land within one tolerance of
    // what a brute-force fine grid (step = tol/2) around the converged
    // point finds. Two small benchmarks; the session cache makes the
    // grid's repeat evaluations cheap.
    for name in ["lstm_gate", "stream_buffer"] {
        let b = bench(name);
        let tol = 8.0;
        let cfg = ExploreConfig::optimized();
        let session = FlowSession::new();
        let rep = FmaxExplorer::new(&b.design, &b.device)
            .configs(vec![cfg.clone()])
            .start_mhz(b.clock_mhz)
            .tolerance_mhz(tol)
            .seed(SEED)
            .run(&session)
            .expect("in-memory log cannot fail");
        let converged = rep.outcomes[0]
            .converged_mhz
            .unwrap_or_else(|| panic!("{name} must converge"));

        let met = |clock_mhz: f64| {
            session
                .run(&cfg.flow(&b.design, &b.device, SEED, clock_mhz))
                .map(|r| r.fmax_mhz >= clock_mhz - 1e-6)
                .unwrap_or(false)
        };
        let mut grid_best = None;
        let mut target = converged - 3.0 * tol;
        while target <= converged + 3.0 * tol {
            if target > 0.0 && met(target) {
                grid_best = Some(target);
            }
            target += tol / 2.0;
        }
        let grid_best = grid_best.expect("the converged point itself is on the grid");
        assert!(
            grid_best >= converged - 1e-6,
            "{name}: search converged to {converged} but the grid only met {grid_best}"
        );
        assert!(
            grid_best - converged <= tol,
            "{name}: grid met {grid_best}, more than one tolerance above {converged}"
        );
    }
}

#[test]
fn resume_from_log_replays_the_table_without_rerunning() {
    let b = bench("stream_buffer");
    let configs = vec![ExploreConfig::optimized(), ExploreConfig::injected(vec![1])];
    let path = temp_log("resume");
    let _ = std::fs::remove_file(&path);
    let explorer = |log: FreqLog, budget: usize| {
        let session = FlowSession::new();
        FmaxExplorer::new(&b.design, &b.device)
            .configs(configs.clone())
            .start_mhz(b.clock_mhz)
            .seed(SEED)
            .budget(budget)
            .log(log)
            .run(&session)
            .expect("log I/O")
    };

    let reference = explorer(FreqLog::open(&path).expect("open"), 25);
    let rows = report::comparable_rows(&reference);
    assert!(reference.full_evals > 0, "reference run must do real work");
    assert!(
        reference.outcomes.iter().any(|o| o.converged_mhz.is_some()),
        "stream_buffer must converge"
    );

    // Resume over the complete log: the same table, zero fresh full
    // evaluations, every trial answered from the log.
    let resumed = explorer(FreqLog::open(&path).expect("reopen"), 25);
    assert_eq!(report::comparable_rows(&resumed), rows);
    assert_eq!(
        resumed.full_evals, 0,
        "a completed search must replay entirely from its log"
    );
    assert!(resumed.log_hits > 0);

    // Interrupted search: a tight budget plays the part of a kill after
    // N trials. Resuming with the full budget completes the search to
    // the identical table, paying only for the trials the interrupted
    // run never reached.
    let path2 = temp_log("resume_killed");
    let _ = std::fs::remove_file(&path2);
    let session = FlowSession::new();
    let killed = FmaxExplorer::new(&b.design, &b.device)
        .configs(configs.clone())
        .start_mhz(b.clock_mhz)
        .seed(SEED)
        .budget(3)
        .log(FreqLog::open(&path2).expect("open"))
        .run(&session)
        .expect("log I/O");
    assert!(
        killed.outcomes.iter().any(|o| o.exhausted),
        "budget 3 must interrupt the search"
    );

    let completed = {
        let session = FlowSession::new();
        FmaxExplorer::new(&b.design, &b.device)
            .configs(configs.clone())
            .start_mhz(b.clock_mhz)
            .seed(SEED)
            .budget(25)
            .log(FreqLog::open(&path2).expect("reopen"))
            .run(&session)
            .expect("log I/O")
    };
    assert_eq!(
        report::comparable_rows(&completed),
        rows,
        "resume after an interrupted search must reach the reference table"
    );
    assert!(
        completed.full_evals < reference.full_evals,
        "resume re-ran completed trials: {} vs {}",
        completed.full_evals,
        reference.full_evals
    );
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&path2);
}

#[test]
fn converged_configurations_pass_simulation_and_verify() {
    let b = bench("lstm_gate");
    let session = FlowSession::new();
    let rep = FmaxExplorer::new(&b.design, &b.device)
        .start_mhz(b.clock_mhz)
        .seed(SEED)
        .run(&session)
        .expect("in-memory log cannot fail");
    let converged: Vec<_> = rep
        .outcomes
        .iter()
        .filter(|o| o.converged_mhz.is_some())
        .collect();
    assert!(!converged.is_empty(), "lstm_gate must converge");
    for o in converged {
        assert_eq!(
            o.sim_check,
            Some(Ok(())),
            "{}: differential simulation failed",
            o.label
        );
        assert_eq!(
            o.verify_ok,
            Some(true),
            "{}: contract checks failed",
            o.label
        );
    }
    assert!(rep.semantics_ok());
}

/// A pseudo-random trial record; quotes and backslashes in the string
/// fields exercise the JSON escaping.
fn random_record(rng: &mut Rng) -> TrialRecord {
    let labels = ["BSKM ×1 fast", "----+r1.2 \"odd\" ×3", "a\\b"];
    TrialRecord {
        key: rng.next_u64(),
        design: "fuzzed".into(),
        label: labels[rng.gen_index(labels.len())].into(),
        clock_mhz: 50.0 + rng.gen_f64() * 700.0,
        kind: if rng.gen_bool(0.8) {
            TrialKind::Full
        } else {
            TrialKind::Probe
        },
        met: rng.gen_bool(0.5),
        fmax_mhz: rng.gen_f64() * 800.0,
        latency_cycles: rng.gen_u64(0, 1 << 20),
        wall_ms: rng.gen_f64() * 1e4,
    }
}

#[test]
fn freq_log_never_loses_a_trial_nor_resurrects_a_partial_line() {
    // 200 random records through serialize -> truncate-at-random-byte ->
    // reload. Whatever the cut, every record whose line fully precedes it
    // is preserved (latest duplicate of a key wins) and nothing after the
    // cut comes back.
    let mut rng = Rng::seed_from_u64(0xF4E9_0001);
    let records: Vec<TrialRecord> = (0..200).map(|_| random_record(&mut rng)).collect();
    let lines: Vec<String> = records
        .iter()
        .map(|r| format!("{}\n", r.to_json()))
        .collect();
    let blob: String = lines.concat();
    let path = temp_log("truncate_fuzz");

    for trial in 0..64 {
        let cut = rng.gen_index(blob.len() + 1);
        let prefix = &blob.as_bytes()[..cut];
        std::fs::write(&path, prefix).expect("write truncated log");
        let log = FreqLog::open(&path).expect("open truncated log");

        // Replay the expected state: a record survives iff its complete
        // JSON text fits in the prefix (the trailing newline itself may
        // be cut off — the line still parses), latest duplicate winning.
        let mut expected: Vec<TrialRecord> = Vec::new();
        let mut offset = 0usize;
        for (rec, line) in records.iter().zip(&lines) {
            if offset + line.len() - 1 <= cut {
                if let Some(old) = expected.iter_mut().find(|e| e.key == rec.key) {
                    *old = rec.clone();
                } else {
                    expected.push(rec.clone());
                }
            }
            offset += line.len();
            if offset > cut {
                break;
            }
        }

        assert_eq!(
            log.len(),
            expected.len(),
            "trial {trial}: cut at byte {cut} lost or invented records"
        );
        for exp in &expected {
            assert_eq!(
                log.get(exp.key),
                Some(exp),
                "trial {trial}: record {} corrupted at cut {cut}",
                exp.key
            );
        }
        let got: Vec<u64> = log.records().map(|r| r.key).collect();
        let want: Vec<u64> = expected.iter().map(|r| r.key).collect();
        assert_eq!(
            got, want,
            "trial {trial}: insertion order broken at cut {cut}"
        );
    }
    let _ = std::fs::remove_file(&path);
}
