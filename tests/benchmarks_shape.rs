//! Table-1-shape integration tests: reduced-size variants of the paper's
//! benchmarks must reproduce the qualitative results (optimizations help;
//! the control-bound designs gain most; area overhead is marginal).
//!
//! The full-size sweep is in `hlsb-bench`'s `table1` binary; these tests
//! use smaller parameters so they stay fast in debug builds.

use hlsb::{Flow, ImplementationResult, OptimizationOptions, PlaceEffort};
use hlsb_benchmarks::{
    face_detect, genome, hbm_stencil, lstm, matmul, pattern_match, stencil, stream_buffer,
    vector_arith,
};
use hlsb_fabric::Device;
use hlsb_ir::Design;

fn run(design: &Design, device: &Device, opts: OptimizationOptions) -> ImplementationResult {
    Flow::new(design.clone())
        .device(device.clone())
        .clock_mhz(300.0)
        .options(opts)
        .place_effort(PlaceEffort::Fast)
        .place_seeds(2)
        .seed(0xDAC2)
        .run()
        .expect("flow succeeds")
}

/// Runs orig vs all-opt and returns (orig, opt).
fn orig_vs_opt(design: &Design, device: &Device) -> (ImplementationResult, ImplementationResult) {
    (
        run(design, device, OptimizationOptions::none()),
        run(design, device, OptimizationOptions::all()),
    )
}

#[test]
fn genome_gains_from_data_optimization() {
    let d = genome::design(32);
    let (orig, opt) = orig_vs_opt(&d, &Device::ultrascale_plus_vu9p());
    assert!(
        opt.fmax_mhz > orig.fmax_mhz,
        "{} vs {}",
        opt.fmax_mhz,
        orig.fmax_mhz
    );
    assert!(opt.inserted_regs > 0);
}

#[test]
fn lstm_flow_completes_with_conservative_fmul() {
    let d = lstm::design(16);
    let (orig, opt) = orig_vs_opt(&d, &Device::ultrascale_plus_vu9p());
    // fmul's conservative prediction means little reg insertion; the flow
    // must still never regress badly.
    assert!(opt.fmax_mhz >= orig.fmax_mhz * 0.85);
}

#[test]
fn face_detection_on_zynq() {
    let d = face_detect::design(5, 24);
    let (orig, opt) = orig_vs_opt(&d, &Device::zynq_zc706());
    assert!(opt.fmax_mhz >= orig.fmax_mhz * 0.9);
    // The slower family caps absolute frequency.
    assert!(orig.fmax_mhz < 400.0);
}

#[test]
fn matmul_and_stream_buffer_need_both_fixes() {
    let dev = Device::ultrascale_plus_vu9p();
    for d in [matmul::design(16, 4), stream_buffer::design(1 << 17)] {
        let (orig, opt) = orig_vs_opt(&d, &dev);
        // At these reduced sizes the optimized build can trail the
        // baseline by a few MHz of placement noise; allow 10 %.
        assert!(
            opt.fmax_mhz > orig.fmax_mhz * 0.9,
            "{}: {} vs {}",
            d.name,
            opt.fmax_mhz,
            orig.fmax_mhz
        );
    }
}

#[test]
fn stream_buffer_gain_grows_with_size() {
    let dev = Device::ultrascale_plus_vu9p();
    let small = stream_buffer::design(1 << 12);
    let large = stream_buffer::design(1 << 18);
    let (so, sp) = orig_vs_opt(&small, &dev);
    let (lo, lp) = orig_vs_opt(&large, &dev);
    let small_gain = sp.gain_over(&so);
    let large_gain = lp.gain_over(&lo);
    assert!(
        large_gain > small_gain - 5.0,
        "gain should grow with buffer size: {small_gain:.0}% -> {large_gain:.0}%"
    );
}

#[test]
fn stencil_stall_decays_with_pipeline_length() {
    let dev = Device::ultrascale_plus_vu9p();
    let short = run(&stencil::design(1), &dev, OptimizationOptions::none());
    let long = run(&stencil::design(4), &dev, OptimizationOptions::none());
    assert!(
        long.fmax_mhz < short.fmax_mhz,
        "stall control must decay: {} -> {}",
        short.fmax_mhz,
        long.fmax_mhz
    );
}

#[test]
fn vector_product_sync_is_pruned() {
    let d = vector_arith::design(64, 4);
    let dev = Device::ultrascale_plus_vu9p();
    let orig = run(&d, &dev, OptimizationOptions::none());
    let opt = run(&d, &dev, OptimizationOptions::all());
    assert_eq!(orig.lower_info.sync_waited, 4);
    assert_eq!(
        opt.lower_info.sync_waited, 1,
        "only the slowest PE is waited"
    );
}

#[test]
fn hbm_scatter_splits_into_free_running_flows() {
    let d = hbm_stencil::design(8, 4);
    let dev = Device::alveo_u50();
    let orig = run(&d, &dev, OptimizationOptions::none());
    let opt = run(&d, &dev, OptimizationOptions::all());
    assert!(
        opt.fmax_mhz > orig.fmax_mhz * 1.1,
        "splitting should clearly help: {} vs {}",
        opt.fmax_mhz,
        orig.fmax_mhz
    );
}

#[test]
fn pattern_matching_needs_control_fix_for_full_gain() {
    // Table 3's ladder: data-only <= data+ctrl.
    let d = pattern_match::design(16, 16);
    let dev = Device::virtex7();
    let orig = run(&d, &dev, OptimizationOptions::none());
    let data = run(&d, &dev, OptimizationOptions::data_only());
    let all = run(&d, &dev, OptimizationOptions::all());
    assert!(data.fmax_mhz >= orig.fmax_mhz * 0.9);
    assert!(
        all.fmax_mhz > data.fmax_mhz,
        "ctrl fix must add gain: {} vs {}",
        all.fmax_mhz,
        data.fmax_mhz
    );
}

#[test]
#[ignore = "full-size Table 1 sweep; run with --ignored in release builds"]
fn full_table1_average_gain_matches_paper_band() {
    let mut gains = Vec::new();
    for b in hlsb_benchmarks::all_benchmarks() {
        let orig = Flow::new(b.design.clone())
            .device(b.device.clone())
            .clock_mhz(b.clock_mhz)
            .options(OptimizationOptions::none())
            .seed(0xDAC2_2020)
            .run()
            .expect("orig");
        let opt = Flow::new(b.design.clone())
            .device(b.device.clone())
            .clock_mhz(b.clock_mhz)
            .options(OptimizationOptions::all())
            .seed(0xDAC2_2020)
            .run()
            .expect("opt");
        gains.push(opt.gain_over(&orig));
    }
    let avg = gains.iter().sum::<f64>() / gains.len() as f64;
    assert!(
        (25.0..=100.0).contains(&avg),
        "average gain {avg:.0}% out of the paper's band (paper: 53%)"
    );
    assert!(gains.iter().all(|&g| g > -10.0), "{gains:?}");
}
