//! The optimizations must never change what a design computes. These
//! tests run the reference interpreter over original and transformed
//! loops and require identical observable outputs.

use hlsb_delay::{CalibratedModel, HlsPredictedModel};
use hlsb_fabric::Device;
use hlsb_ir::interp::{Interpreter, LoopIo};
use hlsb_ir::unroll::unroll_loop;
use hlsb_ir::{CmpPred, DataType, Design, InstId, Loop, OpKind};
use hlsb_rng::Rng;
use hlsb_sched::broadcast_aware;
use hlsb_sync::split_loop_flows;

#[test]
fn broadcast_aware_rewrite_preserves_genome_outputs() {
    let design = hlsb_benchmarks::genome::design(16);
    let lp = unroll_loop(&design.kernels[0].loops[0]).looop;

    let calibrated = CalibratedModel::characterize_analytic(&Device::ultrascale_plus_vu9p(), 3);
    let out = broadcast_aware(&lp, &design, &HlsPredictedModel::new(), &calibrated, 3.0);
    assert!(out.inserted_regs > 0, "transform must actually fire");

    let run = |lp: &Loop| {
        let mut io = LoopIo::default();
        let fin = design
            .fifos
            .iter()
            .position(|f| f.name == "anchors_in")
            .map(|i| hlsb_ir::FifoId(i as u32))
            .unwrap();
        io.fifo_inputs
            .insert(fin, (0..256).map(|i| i * 7 - 300).collect());
        for name in [
            "curr_x",
            "curr_y",
            "curr_tag",
            "avg_qspan",
            "max_dist_x",
            "max_dist_y",
            "bw",
        ] {
            io.invariants.insert(name.into(), 13);
        }
        Interpreter::new(&design).run_loop(lp, 8, &mut io);
        io.fifo_outputs
    };
    assert_eq!(run(&lp), run(&out.looop));
}

#[test]
fn dataflow_split_preserves_scatter_outputs() {
    let design = hlsb_benchmarks::hbm_stencil::design(6, 4);
    let lp = &design.kernels[0].loops[0];
    let flows = split_loop_flows(lp);
    assert_eq!(flows.len(), 6);

    let feed = |io: &mut LoopIo| {
        for (i, _) in design.fifos.iter().enumerate() {
            io.fifo_inputs.insert(
                hlsb_ir::FifoId(i as u32),
                (0..64).map(|k| (k as i64) * 31 + i as i64).collect(),
            );
        }
    };
    let mut io_orig = LoopIo::default();
    feed(&mut io_orig);
    Interpreter::new(&design).run_loop(lp, 16, &mut io_orig);

    let mut io_split = LoopIo::default();
    feed(&mut io_split);
    for f in &flows {
        // Each flow reads disjoint FIFOs, so running them sequentially over
        // the same IO is equivalent to the fused loop.
        Interpreter::new(&design).run_loop(f, 16, &mut io_split);
    }
    assert_eq!(io_orig.fifo_outputs, io_split.fifo_outputs);
}

/// A tiny random straight-line program over two FIFO inputs.
fn random_program(ops: &[u8]) -> (Design, hlsb_ir::FifoId, hlsb_ir::FifoId) {
    let mut b = hlsb_ir::DesignBuilder::new("rand");
    let fin = b.fifo("in", DataType::Int(32), 2);
    let fout = b.fifo("out", DataType::Int(32), 2);
    let mut k = b.kernel("top");
    let mut l = k.pipelined_loop("main", 64, 1);
    let inv = l.invariant_input("inv", DataType::Int(32));
    let x = l.fifo_read(fin, DataType::Int(32));
    let mut vals = vec![inv, x];
    for (i, &op) in ops.iter().enumerate() {
        let a = vals[(op as usize / 7) % vals.len()];
        let c = vals[(op as usize / 3) % vals.len()];
        let v = match op % 7 {
            0 => l.add(a, c),
            1 => l.sub(a, c),
            2 => l.xor(a, c),
            3 => l.min(a, c),
            4 => l.max(a, c),
            5 => {
                let cond = l.cmp(CmpPred::Lt, a, c);
                l.select(cond, a, c)
            }
            _ => l.abs(a),
        };
        let _ = i;
        vals.push(v);
    }
    let last = *vals.last().expect("nonempty");
    l.fifo_write(fout, last);
    l.finish();
    k.finish();
    (b.finish().expect("valid"), fin, fout)
}

fn observe(design: &Design, lp: &Loop, fin: hlsb_ir::FifoId, fout: hlsb_ir::FifoId) -> Vec<i64> {
    let mut io = LoopIo::default();
    io.fifo_inputs
        .insert(fin, (0..64).map(|k| k * 13 - 111).collect());
    io.invariants.insert("inv".into(), 42);
    Interpreter::new(design).run_loop(lp, 32, &mut io);
    io.fifo_outputs.remove(&fout).unwrap_or_default()
}

#[test]
fn dce_and_reg_insertion_preserve_random_programs() {
    let mut rng = Rng::seed_from_u64(0x5E11_0001);
    for _ in 0..48 {
        let len = rng.gen_index(23) + 1;
        let ops: Vec<u8> = (0..len).map(|_| rng.gen_u64(0, 251) as u8).collect();
        let reg_at = rng.gen_index(20);
        let (design, fin, fout) = random_program(&ops);
        let lp = &design.kernels[0].loops[0];
        let base = observe(&design, lp, fin, fout);

        // DCE.
        let (dce_body, _) = lp.body.eliminate_dead();
        let dce = Loop {
            body: dce_body,
            ..lp.clone()
        };
        assert_eq!(observe(&design, &dce, fin, fout), base, "ops {ops:?}");

        // Register insertion after an arbitrary (live, value-producing) def.
        let candidates: Vec<InstId> = lp
            .body
            .iter()
            .filter(|(_, i)| !i.kind.is_sink() && !matches!(i.kind, OpKind::FifoWrite(_)))
            .map(|(id, _)| id)
            .collect();
        let def = candidates[reg_at % candidates.len()];
        let (reg_body, _, _) = lp.body.insert_reg_after(def);
        let reg = Loop {
            body: reg_body,
            ..lp.clone()
        };
        assert_eq!(observe(&design, &reg, fin, fout), base, "ops {ops:?}");
    }
}
