//! End-to-end telemetry: the persistent run ledger across killed and
//! resumed farm processes, ledger neutrality on flow results, live
//! Prometheus scraping mid-run, and the regression sentinel over a real
//! ledger.

use std::path::PathBuf;
use std::sync::Arc;

use hlsb::{Flow, FlowSession, OptimizationOptions, PlaceEffort};
use hlsb_serve::{JobServer, ServeConfig};
use hlsb_store::ArtifactStore;
use hlsb_telemetry::{check, render_prometheus, scrape, Baseline, MetricsServer, RunLedger};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("hlsb_telemetry_test")
        .join(format!("{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::create_dir_all(&dir);
    dir
}

fn job(design: &str) -> String {
    format!("{{\"design\":\"{design}\",\"options\":\"none\"}}")
}

fn serve_cfg(wave: usize) -> ServeConfig {
    ServeConfig {
        workers: 1,
        wave,
        verify: true,
        trace: false,
    }
}

/// Sum of one counter over every `serve-wave` ledger record.
fn wave_total(records: &[hlsb_telemetry::RunRecord], counter: &str) -> u64 {
    records
        .iter()
        .filter(|r| r.tool == "serve-wave")
        .map(|r| r.counter(counter))
        .sum()
}

#[test]
fn killed_and_resumed_serve_ledger_matches_uninterrupted_totals() {
    // The acceptance criterion: a job stream served by a process that
    // dies mid-run and a fresh process that finishes the remainder must
    // leave a ledger whose merged per-wave records equal an
    // uninterrupted run's totals. The stream's tail repeats its head, so
    // the split converts in-run dedup hits into cross-process store hits
    // — the *sum* is what the ledger must preserve.
    let dir = scratch("kill_resume");
    let mut lines: Vec<String> = (0..8).map(|i| job(&format!("fuzz:{i}"))).collect();
    lines.extend((0..4).map(|i| job(&format!("fuzz:{i}"))));

    // Uninterrupted reference run.
    let store = Arc::new(ArtifactStore::open(dir.join("store-a")).unwrap());
    let ledger = Arc::new(RunLedger::open(dir.join("ledger-a.jsonl")).unwrap());
    let mut server = JobServer::with_store(serve_cfg(4), store).with_ledger(ledger.clone());
    let summary = server.process(lines.iter().cloned(), |_| {});
    assert_eq!(summary.jobs, 12);
    assert_eq!(summary.evaluated, 8);
    drop(server);
    let uninterrupted = ledger.records();

    // Killed after the first 6 jobs, resumed by a fresh process over the
    // same store and the same ledger file.
    let ledger_path = dir.join("ledger-b.jsonl");
    {
        let store = Arc::new(ArtifactStore::open(dir.join("store-b")).unwrap());
        let ledger = Arc::new(RunLedger::open(&ledger_path).unwrap());
        let mut first = JobServer::with_store(serve_cfg(4), store).with_ledger(ledger);
        first.process(lines[..6].iter().cloned(), |_| {});
        // The process dies here; waves already run are on disk.
    }
    {
        let store = Arc::new(ArtifactStore::open(dir.join("store-b")).unwrap());
        let ledger = Arc::new(RunLedger::open(&ledger_path).unwrap());
        let mut second = JobServer::with_store(serve_cfg(4), store).with_ledger(ledger);
        second.process(lines[6..].iter().cloned(), |_| {});
    }
    let resumed = RunLedger::load(&ledger_path).unwrap();

    for counter in ["jobs", "evaluated"] {
        assert_eq!(
            wave_total(&resumed, counter),
            wave_total(&uninterrupted, counter),
            "merged {counter} totals diverge"
        );
    }
    // In-run dedup (uninterrupted) becomes store hits (resumed): only
    // the sum is stable across the kill.
    assert_eq!(
        wave_total(&resumed, "store-hits") + wave_total(&resumed, "dedup-hits"),
        wave_total(&uninterrupted, "store-hits") + wave_total(&uninterrupted, "dedup-hits"),
        "merged hit totals diverge"
    );
    assert_eq!(wave_total(&uninterrupted, "jobs"), 12);
    assert_eq!(wave_total(&uninterrupted, "evaluated"), 8);
    assert_eq!(
        wave_total(&uninterrupted, "store-hits") + wave_total(&uninterrupted, "dedup-hits"),
        4
    );
    // Per-flow records ride along: one per fresh evaluation, all ok.
    let flows = |records: &[hlsb_telemetry::RunRecord]| {
        records
            .iter()
            .filter(|r| r.tool == "flow" && r.status == "ok")
            .count()
    };
    assert_eq!(flows(&uninterrupted), 8);
    assert_eq!(flows(&resumed), 8);
}

#[test]
fn ledger_and_tracing_leave_flow_results_bit_identical() {
    let bench = hlsb_benchmarks::all_benchmarks()
        .into_iter()
        .min_by_key(|b| b.design.name.clone())
        .unwrap();
    let flow = |trace: bool| {
        Flow::new(bench.design.clone())
            .device(bench.device.clone())
            .clock_mhz(bench.clock_mhz)
            .options(OptimizationOptions::all())
            .place_effort(PlaceEffort::Fast)
            .place_seeds(1)
            .seed(7)
            .trace(trace)
    };

    let ledger = Arc::new(RunLedger::in_memory());
    let session = FlowSession::new().with_ledger(ledger.clone());
    let traced = session.run(&flow(true)).expect("traced flow succeeds");
    let plain = FlowSession::new()
        .run(&flow(false))
        .expect("plain flow succeeds");
    assert_eq!(
        traced, plain,
        "ledger + tracing must not perturb the implementation"
    );

    let records = ledger.records();
    assert_eq!(records.len(), 1, "one ledger record per top-level run");
    let rec = &records[0];
    assert_eq!(rec.tool, "flow");
    assert_eq!(rec.design, bench.design.name);
    assert_eq!(rec.status, "ok");
    assert!(rec.wall_ms > 0.0);
    assert!(
        rec.stage_ms("implement").unwrap_or(0.0) > 0.0,
        "stage timings recorded: {:?}",
        rec.stages
    );
}

#[test]
fn live_prometheus_endpoint_scrapes_mid_run_and_after() {
    // The jobs iterator is pulled lazily and waves run synchronously as
    // they fill, so a scrape fired while yielding the third job sees
    // exactly the first wave's metrics — a deterministic mid-run
    // observation of a real two-wave serve.
    let mut server = JobServer::new(serve_cfg(2));
    let handle = server.metrics_handle();
    let metrics_server = MetricsServer::start("127.0.0.1:0", move || {
        render_prometheus(&handle.lock().unwrap(), &[("tool", "serve")])
    })
    .expect("bind ephemeral port");
    let addr = metrics_server.addr();

    let lines: Vec<String> = (0..4).map(|i| job(&format!("fuzz:{i}"))).collect();
    let mut mid_run = String::new();
    let stream = lines.into_iter().enumerate().map(|(i, line)| {
        if i == 2 {
            mid_run = scrape(addr).expect("mid-run scrape");
        }
        line
    });
    let mut done = 0;
    server.process(stream, |_| done += 1);
    assert_eq!(done, 4);

    assert!(
        mid_run.contains("hlsb_serve_jobs_total{tool=\"serve\"} 2"),
        "mid-run scrape sees wave one only:\n{mid_run}"
    );
    assert!(
        mid_run.contains("# TYPE hlsb_serve_wave_ms histogram"),
        "{mid_run}"
    );

    let after = scrape(addr).expect("post-run scrape");
    assert!(
        after.contains("hlsb_serve_jobs_total{tool=\"serve\"} 4"),
        "final scrape sees both waves:\n{after}"
    );
    assert!(
        after.contains("hlsb_serve_wave_ms_count{tool=\"serve\"} 2"),
        "{after}"
    );
    metrics_server.shutdown();
}

#[test]
fn sentinel_gates_a_real_ledger_and_detects_a_planted_slowdown() {
    // Build a real ledger: six distinct jobs through a serving process.
    let dir = scratch("sentinel");
    let path = dir.join("ledger.jsonl");
    {
        let ledger = Arc::new(RunLedger::open(&path).unwrap());
        let mut server = JobServer::new(serve_cfg(3)).with_ledger(ledger);
        let lines: Vec<String> = (0..6).map(|i| job(&format!("fuzz:{i}"))).collect();
        server.process(lines, |_| {});
    }
    let records = RunLedger::load(&path).unwrap();
    assert!(records.iter().any(|r| r.tool == "serve-wave"));
    assert!(records.iter().any(|r| r.tool == "flow"));

    // A baseline derived from the run passes against the same run.
    let baseline = Baseline::from_records(&records, 5, 4.0);
    assert!(!baseline.stages.is_empty());
    let clean = check(&records, &baseline, 5);
    assert_eq!(clean.regressions(), 0, "{}", clean.render());

    // Plant a sustained 8x wave slowdown (filling the whole window so
    // the median moves) and the sentinel trips.
    let mut doctored = records.clone();
    for _ in 0..5 {
        let slow = records
            .iter()
            .find(|r| r.tool == "serve-wave")
            .map(|r| {
                let mut d = r.clone();
                for (_, ms) in &mut d.stages {
                    *ms *= 8.0;
                }
                d
            })
            .unwrap();
        doctored.push(slow);
    }
    let tripped = check(&doctored, &baseline, 5);
    assert!(tripped.regressions() > 0, "{}", tripped.render());
    assert!(
        tripped
            .checks
            .iter()
            .any(|c| !c.ok && c.what.contains("serve-wave")),
        "{}",
        tripped.render()
    );
}

#[test]
fn committed_baseline_parses_and_gates_planted_regressions() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/results/baseline.json");
    let text = std::fs::read_to_string(path).expect("results/baseline.json is committed");
    let baseline = Baseline::parse(&text).expect("committed baseline parses");
    assert!(
        !baseline.stages.is_empty(),
        "baseline gates stage latencies"
    );
    assert!(!baseline.rates.is_empty(), "baseline gates hit rates");
    for rule in &baseline.stages {
        assert!(rule.median_ms > 0.0 && rule.max_ratio >= 1.0, "{rule:?}");
    }

    // Synthesize a ledger that matches every committed rule: stage
    // medians scaled by `factor`, serve records carrying a healthy hit
    // rate. At factor 1 the gate passes; a sustained slowdown past the
    // headroom ratio trips every stage rule.
    let ledger_at = |factor: f64| -> Vec<hlsb_telemetry::RunRecord> {
        let mut records = Vec::new();
        for rule in &baseline.stages {
            let design = if rule.design == "*" {
                "d"
            } else {
                &rule.design
            };
            for _ in 0..3 {
                let mut rec = hlsb_telemetry::RunRecord::new(
                    &rule.tool,
                    design,
                    0,
                    "ok",
                    rule.median_ms * factor,
                );
                rec.add_stage(&rule.stage, rule.median_ms * factor);
                if baseline.rates.iter().any(|r| r.tool == rule.tool) {
                    rec.add_count("jobs", 2);
                    rec.add_count("store-hits", 1);
                }
                records.push(rec);
            }
        }
        records
    };

    let clean = check(&ledger_at(1.0), &baseline, 5);
    assert_eq!(clean.regressions(), 0, "{}", clean.render());

    let worst_ratio = baseline
        .stages
        .iter()
        .map(|r| r.max_ratio)
        .fold(1.0, f64::max);
    let slow = check(&ledger_at(worst_ratio * 2.0), &baseline, 5);
    assert_eq!(
        slow.regressions(),
        baseline.stages.len(),
        "every stage rule trips on a sustained slowdown:\n{}",
        slow.render()
    );
}
