//! Every `examples/` binary must keep building and running — examples
//! are the first code a reader tries, and nothing else exercises them.
//!
//! Uses the `cargo` that is running this test (so toolchain pinning is
//! respected) and the release profile, which tier-1 CI has already
//! built; the marginal cost here is running the binaries, not compiling
//! the workspace twice.

use std::path::Path;
use std::process::Command;

const EXAMPLES: [&str; 6] = [
    "broadcast_lint",
    "dataflow_pruning",
    "genome_unroll",
    "quickstart",
    "skid_buffer_sizing",
    "stream_buffer",
];

#[test]
fn all_examples_build_and_run() {
    let manifest_dir = env!("CARGO_MANIFEST_DIR");

    // The list above must stay in sync with the directory.
    let mut on_disk: Vec<String> = std::fs::read_dir(Path::new(manifest_dir).join("examples"))
        .expect("examples/ exists")
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".rs").map(str::to_owned)
        })
        .collect();
    on_disk.sort();
    assert_eq!(on_disk, EXAMPLES, "examples/ changed: update this test");

    for example in EXAMPLES {
        let output = Command::new(env!("CARGO"))
            .args(["run", "--release", "--example", example])
            .current_dir(manifest_dir)
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for {example}: {e}"));
        assert!(
            output.status.success(),
            "example {example} failed ({}):\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
        assert!(
            !output.stdout.is_empty(),
            "example {example} printed nothing"
        );
    }
}
