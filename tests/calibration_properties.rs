//! Cross-crate properties of the delay calibration and control machinery,
//! checked against the paper's published anchor points.

use hlsb_ctrl::{brute_force_split, min_area_split};
use hlsb_delay::{
    characterize, CalibratedModel, CharacterizeConfig, DelayModel, HlsPredictedModel, OpClass,
};
use hlsb_fabric::Device;
use hlsb_ir::{ArrayId, DataType, OpKind};
use hlsb_rng::Rng;
use hlsb_rtlgen::stage_widths;
use hlsb_sched::schedule_loop;

#[test]
fn paper_anchor_sub_64_broadcast() {
    // §5.2: "we adjust the predicted delay of the sub from 0.78ns to
    // 2.08ns according to our measurement of the skeleton designs".
    let cal = CalibratedModel::characterize_analytic(&Device::ultrascale_plus_vu9p(), 0);
    let d = cal.delay_ns(OpKind::Sub, DataType::Int(32), 64);
    assert!((1.7..=2.5).contains(&d), "sub@64 = {d:.2} ns (paper: 2.08)");
}

#[test]
fn fig9_relationships_hold() {
    let dev = Device::ultrascale_plus_vu9p();
    let ch = characterize(&dev, &CharacterizeConfig::default());
    let cal = CalibratedModel::from_characterization(&ch);
    let pred = HlsPredictedModel::new();
    let i32t = DataType::Int(32);
    let f32t = DataType::Float32;

    // (a) predicted flat, calibrated grows: add & buffer access.
    for (op, ty) in [(OpKind::Add, i32t), (OpKind::Store(ArrayId(0)), i32t)] {
        assert_eq!(pred.delay_ns(op, ty, 1), pred.delay_ns(op, ty, 1024));
        assert!(cal.delay_ns(op, ty, 1024) > cal.delay_ns(op, ty, 1) + 1.0);
        // consistency at small factors (§4.1)
        assert!((cal.delay_ns(op, ty, 1) - pred.delay_ns(op, ty, 1)).abs() < 0.4);
    }
    // (b) fmul: prediction deliberately conservative; calibrated = max.
    let fmul_raw = ch.curve(OpClass::FloatMul).unwrap();
    assert!(pred.delay_ns(OpKind::Mul, f32t, 1) > fmul_raw[0].raw_ns);
    assert_eq!(
        cal.delay_ns(OpKind::Mul, f32t, 1),
        pred.delay_ns(OpKind::Mul, f32t, 1)
    );
    assert!(cal.delay_ns(OpKind::Mul, f32t, 1024) >= pred.delay_ns(OpKind::Mul, f32t, 1024));
}

#[test]
fn fig17_dp_on_real_schedule_widths() {
    // The DP on the real (a.b)c pipeline must cut at the scalar waist and
    // beat the naive end buffer by a wide margin.
    let design = hlsb_benchmarks::vector_arith::dot_scale_pipeline(32);
    let lp = &design.kernels[0].loops[0];
    let sched = schedule_loop(lp, &design, &HlsPredictedModel::new(), 3.0);
    let widths = stage_widths(lp, &sched);
    assert!(
        widths.iter().min().copied().unwrap() <= 40,
        "waist missing: {widths:?}"
    );
    let plan = min_area_split(&widths);
    assert!(plan.saving() > 0.5, "saving {:.2}", plan.saving());
    assert!(
        plan.cuts.len() >= 2,
        "expected a waist cut: {:?}",
        plan.cuts
    );
}

#[test]
fn calibrated_dominates_predicted() {
    let cal = CalibratedModel::characterize_analytic(&Device::ultrascale_plus_vu9p(), 1);
    let pred = HlsPredictedModel::new();
    let mut rng = Rng::seed_from_u64(0xCA11_0001);
    for _ in 0..32 {
        let bf = rng.gen_index(1999) + 1;
        for (op, ty) in [
            (OpKind::Add, DataType::Int(32)),
            (OpKind::Mul, DataType::Float32),
            (OpKind::Load(ArrayId(0)), DataType::Int(32)),
        ] {
            assert!(
                cal.delay_ns(op, ty, bf) + 1e-9 >= pred.delay_ns(op, ty, bf),
                "bf {bf}, op {op:?}"
            );
        }
    }
}

#[test]
fn dp_split_is_optimal_on_random_profiles() {
    let mut rng = Rng::seed_from_u64(0xCA11_0002);
    for _ in 0..32 {
        let len = rng.gen_index(10) + 1;
        let widths: Vec<u64> = (0..len).map(|_| rng.gen_u64(1, 4095)).collect();
        assert_eq!(
            min_area_split(&widths).total_bits,
            brute_force_split(&widths),
            "widths {widths:?}"
        );
    }
}
