//! Island-partitioned placement: determinism, equivalence and quality.
//!
//! The implement stage's partitioned strategy (cut along dataflow seams,
//! anneal islands in parallel in reserved regions, register the
//! crossings) must uphold the project's determinism invariants —
//! parallel ≡ sequential bit-identical, cached ≡ cold trace-identical —
//! and must not cost frequency: partitioned fmax stays within tolerance
//! of flat placement on every paper benchmark.

use hlsb::sim::Stimulus;
use hlsb::{Flow, FlowSession, OptimizationOptions, Partitioning, PlaceEffort};

const SEED: u64 = 0xDAC2_2020;

fn partitioned_flow(bench: &hlsb_benchmarks::Benchmark, partitions: Partitioning) -> Flow {
    Flow::new(bench.design.clone())
        .device(bench.device.clone())
        .clock_mhz(bench.clock_mhz)
        .options(OptimizationOptions::all())
        .place_effort(PlaceEffort::Fast)
        .place_seeds(2)
        .seed(SEED)
        .partitions(partitions)
}

fn vector_product() -> hlsb_benchmarks::Benchmark {
    hlsb_benchmarks::all_benchmarks()
        .into_iter()
        .find(|b| b.design.name == "vector_product")
        .expect("vector product benchmark exists")
}

#[test]
fn partitioned_parallel_is_bit_identical_to_sequential() {
    // The partitioned strategy places islands on scoped worker threads;
    // the thread count must never leak into the result — island
    // placements are keyed by (trial, island), not by completion order.
    let bench = vector_product();
    let flows = vec![
        partitioned_flow(&bench, Partitioning::Auto),
        partitioned_flow(&bench, Partitioning::Fixed(3)),
    ];
    let sequential = FlowSession::with_threads(1).run_many(&flows);
    let parallel = FlowSession::with_threads(4).run_many(&flows);
    for ((seq, par), flow) in sequential.iter().zip(&parallel).zip(&flows) {
        let seq = seq.as_ref().expect("flow");
        let par = par.as_ref().expect("flow");
        assert_eq!(seq, par, "parallel != sequential for {flow:?}");
        assert!(
            seq.partition.is_some(),
            "vector product is large enough to actually partition"
        );
    }
    // Single runs with a parallel trial budget agree too.
    let single = FlowSession::with_threads(4);
    for (flow, seq) in flows.iter().zip(&sequential) {
        assert_eq!(
            &single.run(flow).expect("flow"),
            seq.as_ref().expect("flow")
        );
    }
}

#[test]
fn partition_summary_is_recorded_and_consistent() {
    let bench = vector_product();
    let result = FlowSession::with_threads(4)
        .run(&partitioned_flow(&bench, Partitioning::Auto))
        .expect("flow");
    let p = result.partition.as_ref().expect("partitioned run");
    assert!(
        p.islands >= 2,
        "auto partitioning chose {} islands",
        p.islands
    );
    assert_eq!(p.island_cells.len(), p.islands as usize);
    assert!(p.island_cells.iter().all(|&c| c > 0), "no empty islands");
    assert!(
        p.cut_nets > 0 && p.crossing_registers > 0,
        "a multi-kernel dataflow design must have registered crossings"
    );
    assert!(p.crossing_register_bits >= u64::from(p.crossing_registers));
    // Every crossing register is provisioned in the skid bookkeeping
    // (VC02's audited slack), recorded on each skid decision.
    assert!(result
        .lower_info
        .skid_decisions
        .iter()
        .all(|d| d.crossing_slots == 1));
    // The flat run provisions none.
    let flat = FlowSession::with_threads(4)
        .run(&partitioned_flow(&bench, Partitioning::Off))
        .expect("flow");
    assert!(flat.partition.is_none());
    assert!(flat
        .lower_info
        .skid_decisions
        .iter()
        .all(|d| d.crossing_slots == 0));
}

#[test]
fn partitioned_fmax_stays_within_tolerance_of_flat() {
    // Acceptance: partitioned fmax no worse than flat minus 2% on every
    // paper benchmark. Small designs deterministically fall back to flat
    // placement and match exactly.
    let session = FlowSession::new();
    for bench in hlsb_benchmarks::all_benchmarks() {
        let flat = session
            .run(&partitioned_flow(&bench, Partitioning::Off).place_seeds(1))
            .expect("flat flow");
        let part = session
            .run(&partitioned_flow(&bench, Partitioning::Auto).place_seeds(1))
            .expect("partitioned flow");
        assert!(
            part.fmax_mhz >= flat.fmax_mhz * 0.98,
            "{}: partitioned {:.1} MHz vs flat {:.1} MHz",
            bench.name,
            part.fmax_mhz,
            flat.fmax_mhz
        );
    }
}

#[test]
fn partitioned_trace_trees_are_deterministic() {
    // cached ≡ cold and sequential ≡ parallel on the normalized span
    // tree, with per-island spans present under every placement trial.
    let bench = vector_product();
    let flow = partitioned_flow(&bench, Partitioning::Auto).trace(true);
    let session = FlowSession::with_threads(1);
    let cold = session.run(&flow).expect("flow");
    let cached = session.run(&flow).expect("flow");
    assert!(session.cache_stats().hits > 0, "rerun must hit the cache");
    let cold_tree = cold.trace_tree().expect("traced");
    assert_eq!(
        cold_tree.normalized(),
        cached.trace_tree().expect("traced").normalized(),
        "cached trace != cold trace"
    );
    let parallel = FlowSession::with_threads(4).run(&flow).expect("flow");
    assert_eq!(
        cold_tree.normalized(),
        parallel.trace_tree().expect("traced").normalized(),
        "parallel trace != sequential trace"
    );
    // The implement span carries island children under each trial span.
    let islands = cold.partition.as_ref().expect("partitioned").islands;
    let rendered = cold_tree.render();
    for island in 0..islands {
        assert!(
            rendered.contains(&format!("island-{island}")),
            "trace must show island {island}:\n{rendered}"
        );
    }
}

#[test]
fn differential_simulation_is_green_with_partitioning_on() {
    // Partitioning is a placement-layer decision: it must be invisible
    // to the observable semantics of every optimization-cube variant.
    const ITERS_CAP: u64 = 48;
    let session = FlowSession::new();
    let bench = vector_product();
    let stim = Stimulus::seeded(&bench.design, 1, ITERS_CAP as usize);
    let mut golden_baseline = None;
    for bits in 0..8u32 {
        let opts = OptimizationOptions {
            broadcast_aware: bits & 1 != 0,
            sync_pruning: bits & 2 != 0,
            skid_buffer: bits & 4 != 0,
            min_area_skid: false,
        };
        let flow = Flow::new(bench.design.clone())
            .device(bench.device.clone())
            .clock_mhz(bench.clock_mhz)
            .options(opts)
            .partitions(Partitioning::Auto);
        let sim = session
            .simulate(&flow, &stim, ITERS_CAP)
            .unwrap_or_else(|e| panic!("{opts:?}: flow rejected: {e}"));
        sim.check().unwrap_or_else(|e| panic!("{opts:?}: {e}"));
        match &golden_baseline {
            None => golden_baseline = Some(sim),
            Some(base) => {
                if let Some(diff) = sim.golden.diff(&base.golden) {
                    panic!("{opts:?}: golden diverges from baseline: {diff}");
                }
            }
        }
    }
}
