//! Cross-crate integration: the full flow (IR → schedule → RTL → place →
//! timing) on small designs, checking end-to-end invariants.

use hlsb::{Flow, FlowError, FlowSession, OptimizationOptions, PlaceEffort, TraceTree};
use hlsb_benchmarks::Benchmark;
use hlsb_fabric::Device;
use hlsb_ir::builder::DesignBuilder;
use hlsb_ir::{DataType, Design};

fn broadcast_design(unroll: u32) -> Design {
    let mut b = DesignBuilder::new("it_bcast");
    let fin = b.fifo("in", DataType::Int(32), 2);
    let fout = b.fifo("out", DataType::Int(32), 2);
    let mut k = b.kernel("top");
    let mut l = k.pipelined_loop("body", 256, 1);
    l.set_unroll(unroll);
    let src = l.invariant_input("src", DataType::Int(32));
    let x = l.fifo_read(fin, DataType::Int(32));
    let d = l.sub(x, src);
    let m = l.abs(d);
    let r = l.min(m, x);
    l.fifo_write(fout, r);
    l.finish();
    k.finish();
    b.finish().expect("valid")
}

fn run(design: &Design, opts: OptimizationOptions, seed: u64) -> hlsb::ImplementationResult {
    Flow::new(design.clone())
        .device(Device::ultrascale_plus_vu9p())
        .clock_mhz(300.0)
        .options(opts)
        .place_effort(PlaceEffort::Fast)
        .place_seeds(1)
        .seed(seed)
        .run()
        .expect("flow succeeds")
}

#[test]
fn optimizations_never_break_the_flow_and_usually_help() {
    let design = broadcast_design(32);
    let orig = run(&design, OptimizationOptions::none(), 5);
    let opt = run(&design, OptimizationOptions::all(), 5);
    assert!(orig.fmax_mhz > 30.0);
    assert!(
        opt.fmax_mhz >= orig.fmax_mhz * 0.9,
        "opt {} vs orig {}",
        opt.fmax_mhz,
        orig.fmax_mhz
    );
    assert!(
        opt.inserted_regs > 0,
        "the 32-way broadcast should get registers"
    );
}

#[test]
fn results_are_deterministic() {
    let design = broadcast_design(16);
    let a = run(&design, OptimizationOptions::all(), 9);
    let b = run(&design, OptimizationOptions::all(), 9);
    assert_eq!(a.fmax_mhz, b.fmax_mhz);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.critical_cells, b.critical_cells);
}

#[test]
fn area_overhead_of_optimizations_is_marginal() {
    // Paper: "with a marginal area overhead". Allow < 35% FF growth and
    // < 15% LUT growth on this small design.
    let design = broadcast_design(64);
    let orig = run(&design, OptimizationOptions::none(), 2);
    let opt = run(&design, OptimizationOptions::all(), 2);
    let ff_growth = opt.stats.ffs as f64 / orig.stats.ffs.max(1) as f64;
    let lut_growth = opt.stats.luts as f64 / orig.stats.luts.max(1) as f64;
    assert!(ff_growth < 1.35, "FF growth {ff_growth:.2}x");
    assert!(lut_growth < 1.15, "LUT growth {lut_growth:.2}x");
}

#[test]
fn skid_control_removes_the_stall_broadcast() {
    let design = broadcast_design(32);
    let stall = run(&design, OptimizationOptions::none(), 3);
    let skid = run(&design, OptimizationOptions::skid_plain(), 3);
    assert!(
        skid.lower_info.max_control_fanout * 4 < stall.lower_info.max_control_fanout,
        "skid ctrl fanout {} vs stall {}",
        skid.lower_info.max_control_fanout,
        stall.lower_info.max_control_fanout
    );
    assert!(skid.lower_info.skid_buffer_bits > 0);
    assert_eq!(stall.lower_info.skid_buffer_bits, 0);
}

#[test]
fn depth_grows_but_ii_is_preserved_by_broadcast_fix() {
    // Paper §5.2: "the length of the pipeline is 9 originally and 10 after
    // optimization. Both have the same initiation interval of 1."
    let design = broadcast_design(64);
    let orig = run(&design, OptimizationOptions::none(), 4);
    let opt = run(&design, OptimizationOptions::data_only(), 4);
    let d0 = orig.schedule_depths[0];
    let d1 = opt.schedule_depths[0];
    assert!(d1 >= d0, "depth must not shrink: {d0} -> {d1}");
    assert!(d1 <= d0 + 4, "depth overhead should be small: {d0} -> {d1}");
}

/// The three smallest paper benchmarks — enough variety (stall control,
/// dataflow sync, BRAM scatter) to exercise every pipeline stage while
/// keeping the equivalence suite fast.
fn equivalence_benchmarks() -> Vec<Benchmark> {
    hlsb_benchmarks::all_benchmarks()
        .into_iter()
        .filter(|b| ["Stream Buffer", "Pattern Matching", "Face Detection"].contains(&b.name))
        .collect()
}

fn equivalence_flows() -> Vec<Flow> {
    let mut flows = Vec::new();
    for bench in equivalence_benchmarks() {
        for opts in [OptimizationOptions::none(), OptimizationOptions::all()] {
            flows.push(
                Flow::new(bench.design.clone())
                    .device(bench.device.clone())
                    .clock_mhz(bench.clock_mhz)
                    .options(opts)
                    .place_effort(PlaceEffort::Fast)
                    .place_seeds(2)
                    .seed(11),
            );
        }
    }
    flows
}

#[test]
fn cached_artifacts_do_not_change_results() {
    // Guarantee: a warm artifact cache produces bit-identical results to
    // a cold one — caching is purely a time optimization.
    let flows = equivalence_flows();
    let warm = FlowSession::with_threads(1);
    let first: Vec<_> = flows.iter().map(|f| warm.run(f).expect("flow")).collect();
    let rerun: Vec<_> = flows.iter().map(|f| warm.run(f).expect("flow")).collect();
    assert!(
        warm.cache_stats().hits > 0,
        "the rerun must hit the artifact cache: {:?}",
        warm.cache_stats()
    );
    for ((cold, cached), flow) in first.iter().zip(&rerun).zip(&flows) {
        assert_eq!(cold, cached, "cached != cold for {:?}", flow);
    }
    // And a completely fresh session agrees with both.
    let fresh = FlowSession::with_threads(1);
    for (flow, expected) in flows.iter().zip(&first) {
        assert_eq!(&fresh.run(flow).expect("flow"), expected);
    }
}

#[test]
fn disk_warmed_results_are_bit_identical_to_cold_and_cached() {
    // Guarantee: the persistent artifact store never changes what a flow
    // returns — cold == cached == disk-warmed, bit for bit. The store
    // only classifies rebuilds (disk hits) and feeds fingerprints back.
    use hlsb_store::{ArtifactBackend, ArtifactStore};
    use std::sync::Arc;
    let dir = std::env::temp_dir()
        .join("hlsb_flow_roundtrip_store")
        .join(std::process::id().to_string());
    let _ = std::fs::remove_dir_all(&dir);
    let flows = equivalence_flows();

    // Cold: a disk-backed session populates the store from nothing.
    let store = Arc::new(ArtifactStore::open(&dir).expect("store opens"));
    let cold_session =
        FlowSession::with_threads(1).with_backend(store.clone() as Arc<dyn ArtifactBackend>);
    let cold: Vec<_> = flows
        .iter()
        .map(|f| cold_session.run(f).expect("flow"))
        .collect();
    assert_eq!(
        cold_session.cache_stats().disk_hits,
        0,
        "nothing stored yet"
    );
    assert!(store.stage_count() > 0, "cold run publishes fingerprints");

    // Cached: the same session again, answered from memory.
    let cached: Vec<_> = flows
        .iter()
        .map(|f| cold_session.run(f).expect("flow"))
        .collect();
    assert!(cold_session.cache_stats().hits > 0);

    // Disk-warmed: a fresh session and a freshly reopened store — the
    // cross-process case. Rebuilds must match the stored fingerprints.
    let reopened = Arc::new(ArtifactStore::open(&dir).expect("store reopens"));
    let warmed_session =
        FlowSession::with_threads(1).with_backend(reopened as Arc<dyn ArtifactBackend>);
    let warmed: Vec<_> = flows
        .iter()
        .map(|f| warmed_session.run(f).expect("flow"))
        .collect();
    let stats = warmed_session.cache_stats();
    assert!(
        stats.disk_hits > 0 && stats.misses == 0,
        "every warmed rebuild must match a stored fingerprint: {stats:?}"
    );

    // And a plain in-memory session agrees with all three.
    let plain = FlowSession::with_threads(1);
    for (((flow, cold), cached), warmed) in flows.iter().zip(&cold).zip(&cached).zip(&warmed) {
        assert_eq!(cold, cached, "cached != cold for {flow:?}");
        assert_eq!(cold, warmed, "disk-warmed != cold for {flow:?}");
        assert_eq!(
            &plain.run(flow).expect("flow"),
            cold,
            "in-memory != disk-backed for {flow:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parallel_execution_is_bit_identical_to_sequential() {
    // Guarantee: thread count never changes results — neither for the
    // placement trials inside one flow nor for whole flows in run_many.
    let flows = equivalence_flows();
    let sequential = FlowSession::with_threads(1).run_many(&flows);
    let parallel = FlowSession::with_threads(4).run_many(&flows);
    assert_eq!(sequential.len(), parallel.len());
    for ((seq, par), flow) in sequential.iter().zip(&parallel).zip(&flows) {
        let seq = seq.as_ref().expect("flow");
        let par = par.as_ref().expect("flow");
        assert_eq!(seq, par, "parallel != sequential for {:?}", flow);
    }
    // Single runs with a parallel budget agree too (trial-level threads).
    let single = FlowSession::with_threads(4);
    for (flow, seq) in flows.iter().zip(&sequential) {
        assert_eq!(
            &single.run(flow).expect("flow"),
            seq.as_ref().expect("flow")
        );
    }
}

fn traced_equivalence_flows() -> Vec<Flow> {
    equivalence_flows()
        .into_iter()
        .map(|f| f.trace(true))
        .collect()
}

#[test]
fn trace_trees_are_equal_cached_vs_cold() {
    // The span tree is part of the determinism contract: a warm artifact
    // cache replays the same decisions, so the normalized trees (volatile
    // attrs like cache-hits stripped) must be equal to a cold run's.
    let flows = traced_equivalence_flows();
    let session = FlowSession::with_threads(1);
    let cold: Vec<_> = flows
        .iter()
        .map(|f| session.run(f).expect("flow"))
        .collect();
    let cached: Vec<_> = flows
        .iter()
        .map(|f| session.run(f).expect("flow"))
        .collect();
    assert!(
        session.cache_stats().hits > 0,
        "the rerun must hit the artifact cache: {:?}",
        session.cache_stats()
    );
    for ((a, b), flow) in cold.iter().zip(&cached).zip(&flows) {
        let cold_tree = a.trace_tree().expect("traced flow has a span tree");
        let cached_tree = b.trace_tree().expect("traced flow has a span tree");
        assert_eq!(
            cold_tree.normalized(),
            cached_tree.normalized(),
            "cached trace != cold trace for {flow:?}"
        );
    }
}

#[test]
fn trace_trees_are_equal_across_thread_counts() {
    // Neither run_many's outer parallelism nor the placement-trial
    // threads may change what the trace records.
    let flows = traced_equivalence_flows();
    let sequential = FlowSession::with_threads(1).run_many(&flows);
    let parallel = FlowSession::with_threads(4).run_many(&flows);
    for ((seq, par), flow) in sequential.iter().zip(&parallel).zip(&flows) {
        let seq = seq.as_ref().expect("flow");
        let par = par.as_ref().expect("flow");
        assert_eq!(
            seq.trace_tree().expect("traced").normalized(),
            par.trace_tree().expect("traced").normalized(),
            "parallel trace != sequential trace for {flow:?}"
        );
    }
}

#[test]
fn trace_jsonl_round_trips_byte_identical() {
    // export → parse → re-export must reproduce the exact bytes, so
    // archived traces stay diffable.
    let result = Flow::new(broadcast_design(32))
        .device(Device::ultrascale_plus_vu9p())
        .clock_mhz(300.0)
        .options(OptimizationOptions::all())
        .place_effort(PlaceEffort::Fast)
        .place_seeds(2)
        .seed(7)
        .trace(true)
        .run()
        .expect("flow succeeds");
    let tree = result.trace_tree().expect("traced flow has a span tree");
    let text = tree.to_jsonl();
    let parsed = TraceTree::from_jsonl(&text).expect("exporter output parses");
    assert_eq!(&parsed, tree, "parsed tree differs from the original");
    assert_eq!(parsed.to_jsonl(), text, "re-export is not byte-identical");
}

#[test]
fn impossible_designs_error_cleanly() {
    // Unverifiable IR is rejected before any heavy work. The builder
    // sanitizes pragmas, so corrupt the design directly.
    let mut b = DesignBuilder::new("bad");
    let mut k = b.kernel("top");
    let mut l = k.pipelined_loop("body", 4, 1);
    let x = l.varying_input("x", DataType::Int(32));
    l.output("o", x);
    l.finish();
    k.finish();
    let mut d = b.finish_unverified();
    d.kernels[0].loops[0].unroll = 0; // invalid pragma
    let err = Flow::new(d).run().unwrap_err();
    assert!(matches!(err, FlowError::InvalidIr(_)), "{err}");
}
