//! Decision-provenance contract of the traced flow: every pipeline stage
//! gets a span, the paper's three optimizations each leave decision
//! events, the metrics registry fills, and tracing never perturbs the
//! untraced result.

use hlsb::{Flow, OptimizationOptions, PlaceEffort};
use hlsb_benchmarks::Benchmark;
use hlsb_fabric::Device;
use hlsb_ir::builder::DesignBuilder;
use hlsb_ir::{DataType, Design};

const STAGES: [&str; 5] = ["front-end", "schedule", "lower", "implement", "sign-off"];

fn genome() -> Benchmark {
    hlsb_benchmarks::all_benchmarks()
        .into_iter()
        .find(|b| b.name.contains("Genome"))
        .expect("the Table-1 set includes Genome Sequencing")
}

fn traced_flow(bench: &Benchmark, opts: OptimizationOptions) -> Flow {
    Flow::new(bench.design.clone())
        .device(bench.device.clone())
        .clock_mhz(bench.clock_mhz)
        .options(opts)
        .place_effort(PlaceEffort::Fast)
        .place_seeds(2)
        .seed(13)
        .trace(true)
}

/// Fig. 5b shape: `pes` parallel PE calls with staggered static
/// latencies, so sync pruning keeps exactly the cover and prunes the
/// rest.
fn parallel_pe_design(pes: usize) -> Design {
    let mut b = DesignBuilder::new("it_pes");
    let mut pe_ids = Vec::new();
    for p in 0..pes {
        let mut pe = b.kernel(format!("pe{p}"));
        pe.set_static_latency(4 + p as u64);
        let mut l = pe.pipelined_loop("body", 16, 1);
        let x = l.varying_input("x", DataType::Int(32));
        let c = l.constant("k", DataType::Int(32));
        let m = l.mul(x, c);
        l.output("y", m);
        l.finish();
        pe_ids.push(pe.finish());
    }
    let mut top = b.kernel("top");
    let mut l = top.sequential_loop("main", 64);
    let a = l.varying_input("a", DataType::Int(32));
    let outs: Vec<_> = pe_ids
        .iter()
        .map(|&pid| l.call(pid, vec![a], DataType::Int(32)))
        .collect();
    let mut acc = outs[0];
    for &o in &outs[1..] {
        acc = l.add(acc, o);
    }
    l.output("sum", acc);
    l.finish();
    top.finish();
    b.finish().expect("valid")
}

#[test]
fn all_five_stages_get_spans_with_decision_events() {
    let bench = genome();
    let result = traced_flow(&bench, OptimizationOptions::all())
        .run()
        .expect("flow succeeds");
    let tree = result.trace_tree().expect("traced flow has a span tree");

    let root = tree.root().expect("root span");
    assert_eq!(root.name, "flow");
    for stage in STAGES {
        let span = tree
            .find(stage)
            .unwrap_or_else(|| panic!("no {stage} span"));
        assert_eq!(span.parent, Some(root.id), "{stage} must sit under flow");
    }
    // Each placement trial gets its own sub-span (and Chrome track).
    let implement = tree.find("implement").expect("implement span");
    assert_eq!(tree.children(implement.id).count(), 2, "one span per trial");

    // Genome's unrolled chains force splits; skid control inserts a buffer.
    assert!(!tree.events_named("schedule.split").is_empty());
    assert!(!tree.events_named("skid.buffer").is_empty());
    let split = tree.events_named("schedule.split")[0];
    for key in [
        "kernel",
        "loop",
        "violator",
        "op",
        "cut",
        "broadcast-factor",
    ] {
        assert!(
            split.attrs.iter().any(|(k, _)| k == key),
            "schedule.split payload is missing `{key}`"
        );
    }
}

#[test]
fn metrics_registry_fills_counters_and_histograms() {
    let bench = genome();
    let result = traced_flow(&bench, OptimizationOptions::all())
        .run()
        .expect("flow succeeds");
    let tree = result.trace_tree().expect("traced flow has a span tree");
    let m = &tree.metrics;
    assert!(m.counter("decisions.schedule.split") > 0);
    assert!(m.counter("decisions.skid.buffer") > 0);
    let bf = m.histogram("broadcast-factor").expect("broadcast-factor");
    assert!(bf.total > 0 && bf.mean() > 1.0);
    let slack = m.histogram("slack-ns").expect("slack-ns");
    assert_eq!(slack.total, 2, "one slack observation per trial");
}

#[test]
fn sync_pruning_emits_keep_and_prune_decisions() {
    let result = Flow::new(parallel_pe_design(4))
        .device(Device::ultrascale_plus_vu9p())
        .clock_mhz(250.0)
        .options(OptimizationOptions::all())
        .place_effort(PlaceEffort::Fast)
        .place_seeds(1)
        .seed(13)
        .trace(true)
        .run()
        .expect("flow succeeds");
    let tree = result.trace_tree().expect("traced flow has a span tree");
    let kept = tree.events_named("sync.keep");
    let pruned = tree.events_named("sync.prune");
    assert_eq!(kept.len(), 1, "exactly the latency cover is waited on");
    assert_eq!(pruned.len(), 3, "the three covered PEs are pruned");
    for e in kept.iter().chain(&pruned) {
        assert!(
            e.attrs.iter().any(|(k, _)| k == "latency"),
            "{} must carry its latency evidence",
            e.name
        );
    }
    assert_eq!(tree.metrics.counter("decisions.sync.prune"), 3);
    assert_eq!(tree.metrics.counter("decisions.sync.keep"), 1);
}

#[test]
fn tracing_does_not_perturb_the_result() {
    let bench = genome();
    let traced = traced_flow(&bench, OptimizationOptions::all())
        .run()
        .expect("flow succeeds");
    let untraced = traced_flow(&bench, OptimizationOptions::all())
        .trace(false)
        .run()
        .expect("flow succeeds");
    // ImplementationResult equality covers fmax, netlist stats, AND the
    // PassTrace — the derived-from-spans PassTrace must match the
    // PassTimer one exactly (wall times excluded by PassRecord equality).
    assert_eq!(traced, untraced);
    assert!(
        untraced.trace_tree().is_none(),
        "disabled tracing stores no tree"
    );
    assert!(traced.trace_tree().is_some());
}
