//! Static lint before implementation: flag the implicit broadcasts of a
//! design from the IR alone, then run the flow with the lint pre-pass
//! attached and compare the prediction against the routed critical path.
//!
//! ```text
//! cargo run --release --example broadcast_lint
//! ```

use hlsb::{Flow, OptimizationOptions, PlaceEffort};
use hlsb_fabric::Device;
use hlsb_ir::builder::DesignBuilder;
use hlsb_ir::types::DataType;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One coefficient multiplied into 128 unrolled lanes: a §3.1 data
    // broadcast the HLS schedule report would not show.
    let mut b = DesignBuilder::new("fir128");
    let fin = b.fifo("x_in", DataType::Int(32), 2);
    let fout = b.fifo("y_out", DataType::Int(32), 2);
    let mut k = b.kernel("fir");
    let mut l = k.pipelined_loop("mac", 4096, 1);
    l.set_unroll(128);
    let c = l.invariant_input("coef", DataType::Int(32));
    let x = l.fifo_read(fin, DataType::Int(32));
    let y = l.mul(c, x);
    l.fifo_write(fout, y);
    l.finish();
    k.finish();
    let design = b.finish()?;

    // Stand-alone: no placement, no STA — just the IR and the device's
    // calibrated delay tables.
    let device = Device::ultrascale_plus_vu9p();
    let report = hlsb::lint::lint_design(&design, &device, 300.0);
    print!("{}", report.to_table());

    // Or as a pre-pass of the full flow: the report rides along with the
    // implementation result.
    let result = Flow::new(design)
        .device(device)
        .clock_mhz(300.0)
        .options(OptimizationOptions::none())
        .place_effort(PlaceEffort::Fast)
        .place_seeds(1)
        .lint(true)
        .run()?;
    let lint = result.lint.as_ref().expect("lint pre-pass enabled");
    println!(
        "\nflow: {:.0} MHz achieved; lint predicted {} finding(s), worst {:?}",
        result.fmax_mhz,
        lint.diagnostics.len(),
        lint.max_severity()
    );
    Ok(())
}
