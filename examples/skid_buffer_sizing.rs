//! Skid-buffer theory in isolation (paper §4.3): the N+1 depth bound, the
//! throughput equivalence with stall-based control, and the min-area
//! multi-level split (Fig. 12/17).
//!
//! ```text
//! cargo run --release --example skid_buffer_sizing
//! ```

use hlsb_ctrl::sim::{simulate_skid_with, simulate_stall, GatePolicy};
use hlsb_ctrl::{min_area_split, naive_area_bits, required_depth, simulate_skid};

fn main() {
    // 1. The N+1 bound, demonstrated cycle-accurately.
    let n = 12;
    let inputs: Vec<u64> = (0..60).collect();
    let blocked = |c: u64| c < 5; // downstream accepts 5, then blocks

    let ok = simulate_skid_with(
        n,
        required_depth(n),
        GatePolicy::RegisteredEmpty,
        &inputs,
        blocked,
        10_000,
    );
    let bad = simulate_skid_with(n, n, GatePolicy::RegisteredEmpty, &inputs, blocked, 10_000);
    println!("pipeline of N = {n} stages under a hard downstream block:");
    println!(
        "  depth N+1 = {}: peak occupancy {}, overflow: {}",
        required_depth(n),
        ok.peak_occupancy,
        ok.overflow
    );
    println!(
        "  depth N   = {n}: overflow: {} (the +1 matters)",
        bad.overflow
    );

    // 2. Throughput equivalence vs the stall broadcast.
    let inputs: Vec<u64> = (0..5_000).collect();
    let ready = |c: u64| (c * 2654435761) % 100 < 60; // ~60% duty downstream
    let stall = simulate_stall(n, 2, &inputs, ready, 1_000_000);
    let skid = simulate_skid(n, required_depth(n), &inputs, ready, 1_000_000);
    println!("\n5000 items through 60%-duty back-pressure:");
    println!("  stall control: {} cycles", stall.cycles);
    println!(
        "  skid control:  {} cycles (same output stream: {})",
        skid.cycles,
        stall.outputs == skid.outputs
    );

    // 3. Min-area split on the paper's Fig. 17 profile.
    let mut widths = vec![32u64; 56];
    widths.extend([1024u64; 5]);
    let plan = min_area_split(&widths);
    println!("\nFig. 17 profile (56 narrow + 5 wide stages):");
    println!("  naive end buffer: {} bits", naive_area_bits(61, 1024));
    println!(
        "  min-area split at stages {:?}: {} bits ({:.0}% saved)",
        plan.cuts,
        plan.total_bits,
        100.0 * plan.saving()
    );
}
