//! The paper's §5.2 case study: the genome-sequencing chaining kernel.
//!
//! Shows the full broadcast-aware scheduling story on Fig. 13's code: the
//! schedule report with RAW-derived broadcast factors, the registers the
//! §4.1 pass inserts, and the Fmax effect across unroll factors.
//!
//! ```text
//! cargo run --release --example genome_unroll
//! ```

use hlsb::delay::{CalibratedModel, HlsPredictedModel};
use hlsb::ir::unroll::unroll_loop;
use hlsb::sched::{broadcast_aware, schedule_loop, ScheduleReport};
use hlsb::{Flow, OptimizationOptions};
use hlsb_benchmarks::genome;
use hlsb_fabric::Device;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = Device::ultrascale_plus_vu9p();
    let clock_mhz = 333.0;
    let clock_ns = 1000.0 / clock_mhz;

    // 1. The schedule report the paper's tool parses, at unroll 8
    //    (small enough to print).
    let small = genome::design(8);
    let unrolled = unroll_loop(&small.kernels[0].loops[0]).looop;
    let predicted = HlsPredictedModel::new();
    let schedule = schedule_loop(&unrolled, &small, &predicted, clock_ns);
    let report = ScheduleReport::from_schedule("back_search", &unrolled.body, &schedule);
    println!("broadcast entries in the schedule report (bf >= 8):");
    for e in report.broadcasts(8) {
        println!(
            "  {} {} ({}): cycle {}, bf {}",
            e.inst, e.op, e.name, e.cycle, e.broadcast_factor
        );
    }

    // 2. The §4.1 pass at the paper's BACK_SEARCH_COUNT = 64.
    let full = genome::design(64);
    let unrolled64 = unroll_loop(&full.kernels[0].loops[0]).looop;
    let calibrated = CalibratedModel::characterize_analytic(&device, 1);
    let outcome = broadcast_aware(&unrolled64, &full, &predicted, &calibrated, clock_ns);
    println!(
        "\nbroadcast-aware pass at unroll 64: {} register(s) inserted in {} round(s); \
         pipeline depth {} (II {})",
        outcome.inserted_regs, outcome.rounds, outcome.schedule.depth, outcome.schedule.ii
    );

    // 3. End-to-end Fmax across unroll factors (the paper's Fig. 15b).
    println!(
        "\n{:>8} {:>12} {:>12} {:>7}",
        "unroll", "orig (MHz)", "opt (MHz)", "gain"
    );
    for unroll in [8u32, 16, 32] {
        let design = genome::design(unroll);
        let run = |opts| {
            Flow::new(design.clone())
                .device(device.clone())
                .clock_mhz(clock_mhz)
                .options(opts)
                .seed(7)
                .run()
        };
        let orig = run(OptimizationOptions::none())?;
        let opt = run(OptimizationOptions::data_only())?;
        println!(
            "{unroll:>8} {:>12.0} {:>12.0} {:>+6.0}%",
            orig.fmax_mhz,
            opt.fmax_mhz,
            opt.gain_over(&orig)
        );
    }
    println!(
        "\n(paper anchor at unroll 64: 264 -> 341 MHz, +29%; beyond unroll 32 the\n\
         fabric model's placement quality, not the schedule, binds — see\n\
         EXPERIMENTS.md, deviation 1)"
    );
    Ok(())
}
