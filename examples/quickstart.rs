//! Quickstart: build a small streaming design with the IR builder, run the
//! implementation flow with and without the paper's optimizations, and
//! compare the achieved Fmax.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hlsb::{Flow, OptimizationOptions};
use hlsb_fabric::Device;
use hlsb_ir::builder::DesignBuilder;
use hlsb_ir::types::DataType;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A distance-scoring kernel: one anchor value broadcast into 64
    // unrolled compare-and-score chains, streaming through FIFOs — both
    // broadcast categories in ~20 lines.
    let mut b = DesignBuilder::new("quickstart");
    let x_in = b.fifo("x_in", DataType::Int(32), 2);
    let y_out = b.fifo("y_out", DataType::Int(32), 2);

    let mut kernel = b.kernel("score");
    let mut body = kernel.pipelined_loop("main", 4096, 1);
    body.set_unroll(64);
    let anchor = body.invariant_input("anchor", DataType::Int(32)); // broadcast!
    let x = body.fifo_read(x_in, DataType::Int(32));
    let dist = body.sub(x, anchor);
    let mag = body.abs(dist);
    let clipped = body.min(mag, x);
    body.fifo_write(y_out, clipped);
    body.finish();
    kernel.finish();
    let design = b.finish()?;

    let device = Device::ultrascale_plus_vu9p();
    println!(
        "design: {} ({} instructions before unrolling)",
        design.name,
        design.inst_count()
    );
    println!("target: {} @ 300 MHz\n", device);

    let baseline = Flow::new(design.clone())
        .device(device.clone())
        .clock_mhz(300.0)
        .options(OptimizationOptions::none())
        .run()?;
    println!("baseline (stock HLS):    {baseline}");
    println!(
        "  stall-broadcast fanout: {}",
        baseline.lower_info.max_control_fanout
    );

    let optimized = Flow::new(design)
        .device(device)
        .clock_mhz(300.0)
        .options(OptimizationOptions::all())
        .run()?;
    println!("optimized (paper's fixes): {optimized}");
    println!(
        "  registers inserted by broadcast-aware scheduling: {}",
        optimized.inserted_regs
    );
    println!(
        "  skid buffer bits: {}",
        optimized.lower_info.skid_buffer_bits
    );
    println!("\nfrequency gain: {:+.0}%", optimized.gain_over(&baseline));
    Ok(())
}
