//! The paper's §5.5 combined-effect study (Fig. 18/19): a simple stream
//! buffer suffers from *both* broadcast categories at once — the write
//! data fans out to every BRAM unit, and the stall enable fans out to all
//! units and pipeline registers. Only fixing both scales.
//!
//! ```text
//! cargo run --release --example stream_buffer
//! ```

use hlsb::{Flow, OptimizationOptions};
use hlsb_benchmarks::stream_buffer;
use hlsb_fabric::Device;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = Device::ultrascale_plus_vu9p();
    println!("stream buffer: Fmax vs size, per optimization level\n");
    println!(
        "{:>10} {:>7} {:>12} {:>14} {:>16}",
        "words", "BRAMs", "orig (MHz)", "data-only (MHz)", "data+ctrl (MHz)"
    );

    for words in [1 << 14, 1 << 17, 1 << 20] {
        let design = stream_buffer::design(words);
        let brams = design.arrays[0].bram_units();
        let run = |opts| {
            Flow::new(design.clone())
                .device(device.clone())
                .clock_mhz(333.0)
                .options(opts)
                .seed(11)
                .run()
        };
        let orig = run(OptimizationOptions::none())?;
        let data = run(OptimizationOptions::data_only())?;
        let both = run(OptimizationOptions::all())?;
        println!(
            "{words:>10} {brams:>7} {:>12.0} {:>14.0} {:>16.0}",
            orig.fmax_mhz, data.fmax_mhz, both.fmax_mhz
        );
    }

    println!(
        "\nThe original collapses as the buffer grows; the data-broadcast fix\n\
         (distribution registers + duplicable source) helps but the enable\n\
         broadcast remains; with skid-buffer control the design stays fast.\n\
         (Paper Table 1: 154 -> 281 MHz at 95% BRAM, +82%.)"
    );
    Ok(())
}
