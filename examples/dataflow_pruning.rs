//! Synchronization pruning (paper §4.2 / §5.3): the HBM stencil's 28
//! independent flows are glued into one sync domain by the HLS compiler;
//! reconstructing the flow graph and splitting the loop frees them.
//!
//! ```text
//! cargo run --release --example dataflow_pruning
//! ```

use hlsb::{Flow, OptimizationOptions};
use hlsb_benchmarks::hbm_stencil;
use hlsb_fabric::Device;
use hlsb_sync::prune::{prune_sync, ModuleSync};
use hlsb_sync::split_dataflow_design;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The flow-graph split, structurally.
    let design = hbm_stencil::design(28, 8);
    println!(
        "SODA-style design: {} kernel(s), {} FIFOs, all flows in one loop",
        design.kernels.len(),
        design.fifos.len()
    );
    let (split, report) = split_dataflow_design(&design);
    println!(
        "after reconstruction at flow-control granularity: {} kernels ({} loop(s) split)",
        report.kernels_out, report.loops_split
    );
    assert_eq!(split.kernels.len(), 28);

    // 2. Parallel-module pruning on static latencies (§4.2 case 2).
    let modules = vec![
        ModuleSync::fixed("scatter", 12),
        ModuleSync::fixed("compute", 57),
        ModuleSync::fixed("gather", 9),
        ModuleSync::dynamic("dram_reader"),
    ];
    let plan = prune_sync(&modules);
    println!(
        "\nparallel-module pruning: wait on {} of {} done signals {:?}",
        plan.wait.len(),
        modules.len(),
        plan.wait
            .iter()
            .map(|&i| modules[i].name.as_str())
            .collect::<Vec<_>>()
    );

    // 3. End-to-end effect on the Alveo U50 (the paper's 191 -> 324 MHz).
    let device = Device::alveo_u50();
    let run = |opts| {
        Flow::new(design.clone())
            .device(device.clone())
            .clock_mhz(333.0)
            .options(opts)
            .seed(3)
            .run()
    };
    let orig = run(OptimizationOptions::none())?;
    let pruned = run(OptimizationOptions {
        sync_pruning: true,
        skid_buffer: true,
        min_area_skid: true,
        ..OptimizationOptions::default()
    })?;
    println!("\noriginal (one sync domain):  {orig}");
    println!("pruned (28 free-running flows): {pruned}");
    println!(
        "gain: {:+.0}%  (paper: 191 -> 324 MHz, +70%)",
        pruned.gain_over(&orig)
    );
    Ok(())
}
